#ifndef DISC_DISTANCE_COLUMNAR_H_
#define DISC_DISTANCE_COLUMNAR_H_

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "common/aligned.h"
#include "common/cpu_features.h"
#include "common/relation.h"
#include "common/tuple.h"
#include "distance/evaluator.h"
#include "distance/lp_norm.h"

namespace disc {

class Counter;
class WorkStealingPool;

/// Columnar (structure-of-arrays) snapshot of an all-numeric Relation for
/// the flat distance kernels.
///
/// The scalar distance path walks variant-typed `Value`s and pays a virtual
/// `AttributeMetric::Distance` call per attribute per pair. When every
/// metric is a scaled absolute difference and every attribute is numeric,
/// distances reduce to arithmetic over raw double arrays; ColumnarView
/// flattens the relation into contiguous per-attribute columns once (at
/// index/saver build time) so the hot O(n·m) scans stream through memory
/// with no dispatch and no unwrapping.
///
/// Layout: columns are 64-byte aligned and lane-padded — each column
/// occupies padded_rows() = n rounded up to kLanePad doubles, the pad
/// filled with zeros — so the vector kernels (distance/columnar_simd.h)
/// load full blocks unconditionally and mask tail survivors instead of
/// running a scalar epilogue per column.
///
/// Determinism contract: the kernels perform exactly the operations of the
/// scalar path — `|q − v| / scale` per attribute, aggregated in canonical
/// (increasing attribute) order by the LpAccumulator recurrence — so every
/// returned distance, and every ≤/> threshold verdict, is bit-identical to
/// `DistanceEvaluator`. The early-exit fast scan (see FlatKernel) only ever
/// rejects pairs the scalar path would also reject, and the SIMD tier
/// (DESIGN.md §12) preserves both properties for every dispatch level.
///
/// Thread-safety: immutable after Build() (set_simd_tier is a test/bench
/// hook, not for concurrent use); safe for concurrent const use — same
/// contract as the NeighborIndex implementations, DESIGN.md §5.
class ColumnarView {
 public:
  /// Lane-pad unit of the column layout, in doubles: one 64-byte cache
  /// line / AVX-512 width, a multiple of every kernel's block size.
  static constexpr std::size_t kLanePad = kColumnAlignBytes / sizeof(double);

  /// Work counters for the batch kernels, resolved from GlobalMetrics() at
  /// Build time (null handles = metrics disabled = no-op, the
  /// IndexQueryMetrics pattern). Flushed once per batch call, never per
  /// row. Note the reject counter is tier-dependent by design: which rows
  /// the pre-pass dismisses may differ between scalar and vector tiers
  /// (only observable outputs are bit-identical).
  struct ScanCounters {
    Counter* rows_scanned = nullptr;    ///< disc_kernel_rows_scanned_total
    Counter* certain_rejects = nullptr; ///< disc_kernel_certain_rejects_total
  };

  /// Eligibility for the fast path: the schema is all-numeric and
  /// non-empty, no wider than AttributeSet::kCapacity (the subset kernels
  /// key on bitmasks), and every evaluator metric is a scaled absolute
  /// difference. String attributes or custom metrics fall back to the
  /// scalar reference path.
  static bool Eligible(const Relation& relation,
                       const DistanceEvaluator& evaluator);

  /// Builds a view, or returns nullptr when `relation` is not Eligible.
  static std::unique_ptr<ColumnarView> Build(
      const Relation& relation, const DistanceEvaluator& evaluator);

  /// Number of rows n.
  std::size_t rows() const { return rows_; }
  /// Column stride: n rounded up to kLanePad. Rows [n, padded_rows()) of
  /// every column exist and are zero — load-safe, never reported.
  std::size_t padded_rows() const { return padded_rows_; }
  /// Number of attributes m.
  std::size_t arity() const { return arity_; }
  /// The aggregation norm (copied from the evaluator).
  LpNorm norm() const { return norm_; }
  /// Contiguous column of attribute `a` (padded_rows() doubles, the first
  /// rows() of them live). 64-byte aligned.
  const double* column(std::size_t a) const {
    return data_.data() + a * padded_rows_;
  }
  /// The metric scale of attribute `a` (divides the raw difference).
  double scale(std::size_t a) const { return scales_[a]; }
  /// The m scales as a contiguous array (vector kernels load them blockwise).
  const double* scales() const { return scales_.data(); }
  /// True iff every attribute scale is exactly 1 (lets the kernels skip
  /// the division).
  bool unit_scales() const { return unit_scales_; }

  /// Attribute permutation scanned by the early-exit kernels: highest
  /// scaled variance first, so far-apart pairs overshoot the threshold in
  /// the first few attributes. Pure heuristic — it never changes results,
  /// only how soon a certain reject fires.
  std::span<const std::size_t> scan_order() const { return scan_order_; }

  /// scan_order()[k] * padded_rows(): element offsets of the scan-order
  /// columns, precomputed so the single-row gather kernels index columns
  /// without a 64-bit vector multiply.
  std::span<const std::size_t> scan_offsets() const { return scan_offsets_; }

  /// The vector tier this view's kernels dispatch to, latched from
  /// ActiveSimdTier() at Build.
  SimdTier simd_tier() const { return simd_tier_; }

  /// Test/bench hook: force a (lower) tier on this view. Clamped to
  /// DetectedSimdTier() so forcing "avx2" on lesser hardware degrades
  /// instead of faulting. Not thread-safe against concurrent kernel use.
  void set_simd_tier(SimdTier tier);

  /// The batch-kernel work counters (null handles when metrics are
  /// disabled).
  const ScanCounters& scan_counters() const { return counters_; }

  /// Extracts a query tuple's coordinates (must be all-numeric and of
  /// matching arity — guaranteed for tuples over an eligible schema).
  std::vector<double> QueryCoords(const Tuple& query) const;

 private:
  ColumnarView() = default;

  std::size_t rows_ = 0;
  std::size_t padded_rows_ = 0;
  std::size_t arity_ = 0;
  LpNorm norm_ = LpNorm::kL2;
  bool unit_scales_ = true;
  SimdTier simd_tier_ = SimdTier::kScalar;
  ScanCounters counters_;
  /// Column-major, 64-byte aligned: column a at
  /// [a·padded_rows_, a·padded_rows_ + padded_rows_), zero-padded past n.
  AlignedVector<double> data_;
  std::vector<double> scales_;
  std::vector<std::size_t> scan_order_;
  std::vector<std::size_t> scan_offsets_;
};

/// Distance kernel binding one query point to a ColumnarView. Cheap to
/// construct (copies m doubles); make one per query, then evaluate any
/// number of rows. All methods are bit-identical to the corresponding
/// DistanceEvaluator calls with the query as t1 and the indexed row as t2,
/// on every SIMD tier (the batch entry points dispatch to the vector
/// kernels of distance/columnar_simd.h when the view's tier allows).
class FlatKernel {
 public:
  FlatKernel(const ColumnarView& view, const Tuple& query)
      : view_(&view), q_(view.QueryCoords(query)) {}
  FlatKernel(const ColumnarView& view, std::vector<double> query_coords)
      : view_(&view), q_(std::move(query_coords)) {}

  /// Full-tuple distance Δ(q, t_row) — canonical order, no early exit.
  double Distance(std::size_t row) const;

  /// Full-tuple distance with early exit: +infinity as soon as the pair is
  /// certainly beyond `threshold`, the exact (canonical-order) distance
  /// otherwise. For L2 the scan compares running d² against ε² and takes a
  /// single sqrt only on accept. Verdicts and accepted values are
  /// bit-identical to DistanceEvaluator::DistanceWithin.
  double DistanceWithin(std::size_t row, double threshold) const;

  /// Subset distance Δ(q[X], t_row[X]) — canonical order over X.
  double DistanceOn(const AttributeSet& x, std::size_t row) const;

  /// Subset distance with early exit past `threshold` (+infinity), matching
  /// DistanceEvaluator::DistanceOnWithin bit for bit.
  double DistanceOnWithin(const AttributeSet& x, std::size_t row,
                          double threshold) const;

  /// Batch range scan over all n rows: appends every row with
  /// Δ(q, t_row) ≤ epsilon to `rows` and its distance to `distances`
  /// (parallel arrays, ascending row order). Verdicts and distances are
  /// bit-identical to calling DistanceWithin(row, epsilon) per row; the
  /// batch form keeps the O(n) loop inside the kernel so the threshold
  /// constants and norm dispatch are hoisted out of the per-row path — and
  /// is where the SIMD tier engages.
  void CollectWithin(double epsilon, std::vector<std::size_t>* rows,
                     std::vector<double>* distances) const;

  /// Batch count: the number of rows with Δ(q, t_row) ≤ epsilon, without
  /// materializing the matches. Same verdicts as CollectWithin.
  std::size_t CountWithin(double epsilon) const;

  /// Parallel CollectWithin: chunks the row range across `pool` (nested
  /// ParallelFor; see WorkStealingPool), each chunk collecting into local
  /// vectors that are concatenated in chunk order — so the output is
  /// identical, element for element, to the sequential overload. The chunk
  /// grain is a multiple of ColumnarView::kLanePad, so every chunk is
  /// block-aligned and per-chunk SIMD scans stay grain-pure. Falls back
  /// to the sequential scan for a null/single-thread pool or a small n.
  void CollectWithin(double epsilon, std::vector<std::size_t>* rows,
                     std::vector<double>* distances,
                     WorkStealingPool* pool) const;

  /// Parallel CountWithin: per-chunk counts summed after the join. Same
  /// verdicts and fallback rules as the parallel CollectWithin.
  std::size_t CountWithin(double epsilon, WorkStealingPool* pool) const;

  /// Batch full-distance fill: out[i − begin] = Distance(i) for i in
  /// [begin, end), bit-identical lane for lane (the canonical attribute
  /// order is preserved; the vector tier only evaluates multiple rows per
  /// instruction). Feeds the eager SearchDistanceCache fill.
  void FillDistances(double* out, std::size_t begin, std::size_t end) const;

  /// Fills `out[i] = Δ(q[a], t_i[a])` for all n rows of attribute `a` —
  /// the memoized per-attribute rows of SearchDistanceCache.
  void FillAttributeDistances(std::size_t a, double* out) const;

  /// The bound view.
  const ColumnarView& view() const { return *view_; }
  /// The query coordinates.
  std::span<const double> query() const { return q_; }

 private:
  const ColumnarView* view_;
  std::vector<double> q_;
};

}  // namespace disc

#endif  // DISC_DISTANCE_COLUMNAR_H_
