#ifndef DISC_DISTANCE_NGRAM_H_
#define DISC_DISTANCE_NGRAM_H_

#include <cstddef>
#include <string_view>

namespace disc {

/// Normalized n-gram similarity of two strings in [0, 1]: the Jaccard
/// coefficient of their character n-gram multisets (with '#' padding).
/// Used by the rule-based record matching of the paper's §4.1.3, with
/// default n = 2 and similarity threshold 0.7.
double NgramSimilarity(std::string_view a, std::string_view b, std::size_t n = 2);

/// 1 - NgramSimilarity. Not a true metric (triangle inequality may fail) —
/// used only for matching decisions, never as the clustering metric.
double NgramDistance(std::string_view a, std::string_view b, std::size_t n = 2);

}  // namespace disc

#endif  // DISC_DISTANCE_NGRAM_H_
