#include "distance/ngram.h"

#include <algorithm>
#include <map>
#include <string>

namespace disc {

namespace {

std::map<std::string, int> NgramCounts(std::string_view s, std::size_t n) {
  std::map<std::string, int> counts;
  if (n == 0) return counts;
  std::string padded;
  padded.reserve(s.size() + 2 * (n - 1));
  padded.append(n - 1, '#');
  padded.append(s);
  padded.append(n - 1, '#');
  if (padded.size() < n) return counts;
  for (std::size_t i = 0; i + n <= padded.size(); ++i) {
    ++counts[padded.substr(i, n)];
  }
  return counts;
}

}  // namespace

double NgramSimilarity(std::string_view a, std::string_view b, std::size_t n) {
  if (a == b) return 1.0;
  auto ca = NgramCounts(a, n);
  auto cb = NgramCounts(b, n);
  if (ca.empty() && cb.empty()) return 1.0;
  int intersection = 0;
  int union_size = 0;
  auto ia = ca.begin();
  auto ib = cb.begin();
  while (ia != ca.end() || ib != cb.end()) {
    if (ib == cb.end() || (ia != ca.end() && ia->first < ib->first)) {
      union_size += ia->second;
      ++ia;
    } else if (ia == ca.end() || ib->first < ia->first) {
      union_size += ib->second;
      ++ib;
    } else {
      intersection += std::min(ia->second, ib->second);
      union_size += std::max(ia->second, ib->second);
      ++ia;
      ++ib;
    }
  }
  if (union_size == 0) return 1.0;
  return static_cast<double>(intersection) / static_cast<double>(union_size);
}

double NgramDistance(std::string_view a, std::string_view b, std::size_t n) {
  return 1.0 - NgramSimilarity(a, b, n);
}

}  // namespace disc
