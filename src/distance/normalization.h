#ifndef DISC_DISTANCE_NORMALIZATION_H_
#define DISC_DISTANCE_NORMALIZATION_H_

#include <cstddef>
#include <vector>

#include "common/relation.h"

namespace disc {

/// Normalization mode for numeric attributes.
enum class NormalizationMode {
  kMinMax,  ///< map observed [min, max] to [0, 1]
  kZScore,  ///< subtract mean, divide by stddev
};

/// Per-attribute affine normalizer fitted on a relation. The paper's GPS
/// example works on normalized values (Example 2's Δ(t13, t10) = 0.903 for
/// a raw longitude gap of ~31) — heterogeneous attributes like Time and
/// Longitude only aggregate meaningfully under a shared scale. String
/// attributes pass through unchanged.
class Normalizer {
 public:
  /// Fits normalization statistics on `data`.
  static Normalizer Fit(const Relation& data,
                        NormalizationMode mode = NormalizationMode::kMinMax);

  /// Applies the fitted transform: v -> (v - offset) / scale per attribute.
  Relation Apply(const Relation& data) const;

  /// Inverts the transform (lossless up to floating-point rounding):
  /// v -> v * scale + offset. Used to map saved/adjusted tuples back to the
  /// original units for reporting.
  Relation Invert(const Relation& data) const;

  /// Transforms a single tuple.
  Tuple ApplyToTuple(const Tuple& tuple) const;
  Tuple InvertTuple(const Tuple& tuple) const;

  /// Offset subtracted from attribute `a` (min or mean).
  double offset(std::size_t a) const { return offsets_[a]; }
  /// Scale dividing attribute `a` (range or stddev; never zero).
  double scale(std::size_t a) const { return scales_[a]; }
  /// Number of attributes the normalizer was fitted on.
  std::size_t arity() const { return offsets_.size(); }

 private:
  std::vector<double> offsets_;
  std::vector<double> scales_;
  std::vector<bool> numeric_;
};

}  // namespace disc

#endif  // DISC_DISTANCE_NORMALIZATION_H_
