#include "distance/evaluator.h"

#include <limits>

namespace disc {

DistanceEvaluator::DistanceEvaluator(const Schema& schema, LpNorm norm)
    : norm_(norm) {
  metrics_.reserve(schema.arity());
  for (std::size_t a = 0; a < schema.arity(); ++a) {
    metrics_.push_back(DefaultMetricFor(schema.kind(a)));
  }
}

DistanceEvaluator::DistanceEvaluator(
    const Schema& schema, std::vector<std::unique_ptr<AttributeMetric>> metrics,
    LpNorm norm)
    : metrics_(std::move(metrics)), norm_(norm) {
  (void)schema;
}

double DistanceEvaluator::Distance(const Tuple& t1, const Tuple& t2) const {
  LpAccumulator acc(norm_);
  for (std::size_t a = 0; a < metrics_.size(); ++a) {
    acc.Add(metrics_[a]->Distance(t1[a], t2[a]));
  }
  return acc.Total();
}

double DistanceEvaluator::DistanceOn(const AttributeSet& x, const Tuple& t1,
                                     const Tuple& t2) const {
  LpAccumulator acc(norm_);
  for (std::size_t a = 0; a < metrics_.size(); ++a) {
    if (x.contains(a)) acc.Add(metrics_[a]->Distance(t1[a], t2[a]));
  }
  return acc.Total();
}

double DistanceEvaluator::DistanceWithin(const Tuple& t1, const Tuple& t2,
                                         double threshold) const {
  LpAccumulator acc(norm_);
  for (std::size_t a = 0; a < metrics_.size(); ++a) {
    acc.Add(metrics_[a]->Distance(t1[a], t2[a]));
    if (acc.Exceeds(threshold)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return acc.Total();
}

double DistanceEvaluator::DistanceOnWithin(const AttributeSet& x,
                                           const Tuple& t1, const Tuple& t2,
                                           double threshold) const {
  LpAccumulator acc(norm_);
  for (std::size_t a = 0; a < metrics_.size(); ++a) {
    if (!x.contains(a)) continue;
    acc.Add(metrics_[a]->Distance(t1[a], t2[a]));
    if (acc.Exceeds(threshold)) {
      return std::numeric_limits<double>::infinity();
    }
  }
  return acc.Total();
}

bool DistanceEvaluator::AllScaledAbsoluteDifference(
    std::vector<double>* scales) const {
  if (scales != nullptr) {
    scales->clear();
    scales->reserve(metrics_.size());
  }
  for (const auto& metric : metrics_) {
    double scale = 1.0;
    if (!metric->IsScaledAbsoluteDifference(&scale)) return false;
    if (scales != nullptr) scales->push_back(scale);
  }
  return true;
}

bool DistanceEvaluator::AllUnitAbsoluteDifference() const {
  for (const auto& metric : metrics_) {
    double scale = 1.0;
    if (!metric->IsScaledAbsoluteDifference(&scale) || scale != 1.0) {
      return false;
    }
  }
  return true;
}

}  // namespace disc
