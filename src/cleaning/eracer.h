#ifndef DISC_CLEANING_ERACER_H_
#define DISC_CLEANING_ERACER_H_

#include <cstddef>

#include "common/relation.h"
#include "distance/evaluator.h"

namespace disc {

/// ERACER options. Per the paper (§4.1.4), ERACER's parameters (regression
/// coefficients / histograms) are learned directly from the data; the only
/// external knobs are the iteration count and the residual cut.
struct EracerOptions {
  /// Relational-dependency iterations (learn → predict → update).
  std::size_t iterations = 3;
  /// A cell is replaced by its prediction when its absolute residual exceeds
  /// `residual_zscore` standard deviations of the attribute's residuals.
  double residual_zscore = 3.0;
};

/// ERACER (Mayfield et al., SIGMOD'10): statistical inference cleaning.
/// Each numeric attribute is modeled by linear regression on the remaining
/// numeric attributes; cells whose residuals are extreme are replaced by
/// the model prediction, and the learn/predict cycle iterates so repairs
/// feed later models. String attributes are left untouched (the method is
/// numeric-only, which is why Figure 8 omits it).
Relation Eracer(const Relation& data, const DistanceEvaluator& evaluator,
                const EracerOptions& options = {});

}  // namespace disc

#endif  // DISC_CLEANING_ERACER_H_
