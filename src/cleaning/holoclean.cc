#include "cleaning/holoclean.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <memory>
#include <vector>

#include "common/random.h"
#include "index/index_factory.h"

namespace disc {

namespace {

/// Learned per-feature weights. In the full system these come from ERM over
/// the clean cells; here we fit the two weights by how well each feature
/// alone ranks the observed clean value first among candidates.
struct FeatureWeights {
  double frequency = 1.0;
  double support = 1.0;
};

/// Frequency table of binned values per attribute (numeric values are
/// snapped onto the attribute's observed deciles; strings used verbatim).
class ValueStats {
 public:
  ValueStats(const Relation& data, std::size_t attr) : attr_(attr) {
    for (const Tuple& t : data) {
      ++counts_[t[attr].ToString()];
      total_ += 1;
    }
  }

  double Frequency(const Value& v) const {
    auto it = counts_.find(v.ToString());
    if (it == counts_.end()) return 0;
    return static_cast<double>(it->second) / std::max(1.0, total_);
  }

 private:
  std::size_t attr_;
  std::map<std::string, int> counts_;
  double total_ = 0;
};

}  // namespace

Relation Holoclean(const Relation& data, const DistanceEvaluator& evaluator,
                   const HolocleanOptions& options) {
  Relation repaired = data;
  const std::size_t n = data.size();
  const std::size_t m = data.arity();
  if (n == 0 || m == 0) return repaired;

  // Split into clean (labeled) and noisy tuples using the constraint.
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(data, evaluator, options.constraint.epsilon);
  InlierOutlierSplit split =
      SplitInliersOutliers(data, *index, options.constraint);
  if (split.outlier_rows.empty()) return repaired;

  Relation clean = data.Select(split.inlier_rows);
  DistanceEvaluator clean_eval(data.schema(), evaluator.norm());
  std::unique_ptr<NeighborIndex> clean_index =
      MakeNeighborIndex(clean, clean_eval, options.constraint.epsilon);

  // Per-attribute statistics over the clean portion.
  std::vector<ValueStats> stats;
  stats.reserve(m);
  for (std::size_t a = 0; a < m; ++a) stats.emplace_back(clean, a);

  // Candidate pool per attribute: the most frequent clean values.
  Rng rng(options.seed);
  std::vector<std::vector<Value>> candidates(m);
  for (std::size_t a = 0; a < m; ++a) {
    std::vector<Value> domain = clean.Domain(a);
    std::sort(domain.begin(), domain.end(), [&](const Value& x, const Value& y) {
      return stats[a].Frequency(x) > stats[a].Frequency(y);
    });
    if (domain.size() > options.candidates_per_cell) {
      domain.resize(options.candidates_per_cell);
    }
    candidates[a] = std::move(domain);
  }

  // Weight learning (ERM stand-in): on a sample of clean tuples, check how
  // often each feature ranks the tuple's own value first among candidates.
  FeatureWeights weights;
  {
    std::size_t sample = std::min<std::size_t>(clean.size(), 64);
    std::size_t freq_hits = 0;
    std::size_t support_hits = 0;
    std::size_t trials = 0;
    for (std::size_t s = 0; s < sample; ++s) {
      std::size_t row = static_cast<std::size_t>(rng.NextIndex(clean.size()));
      std::size_t a = static_cast<std::size_t>(rng.NextIndex(m));
      const Value& truth = clean[row][a];
      if (candidates[a].empty()) continue;
      ++trials;
      // Frequency feature.
      double truth_freq = stats[a].Frequency(truth);
      bool freq_best = true;
      for (const Value& c : candidates[a]) {
        if (stats[a].Frequency(c) > truth_freq) {
          freq_best = false;
          break;
        }
      }
      if (freq_best) ++freq_hits;
      // Support feature: neighbor count of the tuple with candidate value.
      Tuple probe = clean[row];
      double truth_support = static_cast<double>(clean_index->CountWithin(
          probe, options.constraint.epsilon, options.constraint.eta * 2));
      bool support_best = true;
      for (const Value& c : candidates[a]) {
        probe[a] = c;
        double sup = static_cast<double>(clean_index->CountWithin(
            probe, options.constraint.epsilon, options.constraint.eta * 2));
        if (sup > truth_support) {
          support_best = false;
          break;
        }
      }
      if (support_best) ++support_hits;
    }
    if (trials > 0) {
      weights.frequency = 0.5 + static_cast<double>(freq_hits) / static_cast<double>(trials);
      weights.support = 0.5 + static_cast<double>(support_hits) / static_cast<double>(trials);
    }
  }

  // Inference: coordinate descent over each noisy tuple's cells; every cell
  // takes its maximum-score candidate (keeping the current value is also a
  // candidate).
  for (std::size_t row : split.outlier_rows) {
    Tuple& t = repaired[row];
    for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
      bool changed = false;
      for (std::size_t a = 0; a < m; ++a) {
        double best_score = -1;
        Value best_value = t[a];
        auto score_of = [&](const Value& v) {
          Tuple probe = t;
          probe[a] = v;
          double support = static_cast<double>(clean_index->CountWithin(
              probe, options.constraint.epsilon, options.constraint.eta * 2));
          double support_norm =
              support / static_cast<double>(options.constraint.eta * 2);
          return weights.frequency * stats[a].Frequency(v) +
                 weights.support * support_norm;
        };
        double keep_score = score_of(t[a]);
        best_score = keep_score;
        for (const Value& c : candidates[a]) {
          if (c == t[a]) continue;
          double s = score_of(c);
          if (s > best_score) {
            best_score = s;
            best_value = c;
          }
        }
        if (!(best_value == t[a])) {
          t[a] = best_value;
          changed = true;
        }
      }
      if (!changed) break;
    }
  }
  return repaired;
}

}  // namespace disc
