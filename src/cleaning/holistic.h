#ifndef DISC_CLEANING_HOLISTIC_H_
#define DISC_CLEANING_HOLISTIC_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/relation.h"
#include "distance/evaluator.h"

namespace disc {

/// A denial constraint of the single-tuple range form
///   ¬(t[A] < lo ∨ t[A] > hi)
/// i.e. attribute A must lie in [lo, hi]. Range DCs are the workhorse of
/// constraint-based repair over numeric data; they are discovered from the
/// data itself (Chu et al.'s DC discovery, approximated here by robust
/// quantile fences), which is exactly why they miss small in-range errors —
/// the weakness the paper discusses in §5.
struct RangeDenialConstraint {
  std::size_t attribute = 0;
  double lo = 0;
  double hi = 0;
};

/// Holistic-cleaning options.
struct HolisticOptions {
  /// Fence width in IQR multiples for discovered range DCs (Tukey fences;
  /// 3.0 declares a conservative/"weak" constraint that certainly holds).
  double iqr_multiplier = 3.0;
  /// Repair passes over the violation hypergraph.
  std::size_t max_passes = 2;
};

/// Discovers range denial constraints from the data (one per numeric
/// attribute, fences at quartiles ± multiplier·IQR).
std::vector<RangeDenialConstraint> DiscoverRangeConstraints(
    const Relation& data, double iqr_multiplier);

/// Holistic data cleaning (Chu et al., ICDE'13): builds the set of cells
/// violating the discovered denial constraints, then repairs violation
/// groups together ("holistically") — each violating cell is moved to the
/// nearest constraint-satisfying value. Cells inside all fences are never
/// touched, so small errors pass through uncleaned.
Relation Holistic(const Relation& data, const DistanceEvaluator& evaluator,
                  const HolisticOptions& options = {});

}  // namespace disc

#endif  // DISC_CLEANING_HOLISTIC_H_
