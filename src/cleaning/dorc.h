#ifndef DISC_CLEANING_DORC_H_
#define DISC_CLEANING_DORC_H_

#include "common/relation.h"
#include "constraints/distance_constraint.h"
#include "distance/evaluator.h"

namespace disc {

/// DORC options. Shares the (ε, η) parameters with DISC (paper §4.1.4).
struct DorcOptions {
  DistanceConstraint constraint;
  /// DORC's published formulation works on a pairwise density matrix; the
  /// O(n²) behaviour is part of what Table 2 / Figure 6 measure. Set this
  /// to allow the index-accelerated variant instead (not the paper setup).
  bool use_index = false;
};

/// DORC ("turn waste into wealth", KDD'15): simultaneous clustering and
/// cleaning by **tuple substitution** — each tuple that lacks η ε-neighbors
/// is substituted wholesale by its nearest constraint-satisfying tuple, so
/// *all* attributes change (the over-change DISC's value adjustment avoids;
/// see Figures 1(c) and 2(b)).
Relation Dorc(const Relation& data, const DistanceEvaluator& evaluator,
              const DorcOptions& options);

}  // namespace disc

#endif  // DISC_CLEANING_DORC_H_
