#include "cleaning/sse.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace disc {

namespace {

/// Median nearest-neighbor distance among a bounded sample of inliers —
/// the automatic neighborhood radius.
double AutoEpsilon(const Relation& inliers, const DistanceEvaluator& evaluator) {
  const std::size_t n = inliers.size();
  if (n < 2) return 1.0;
  std::vector<double> nn;
  const std::size_t samples = std::min<std::size_t>(n, 48);
  std::size_t stride = std::max<std::size_t>(1, n / samples);
  for (std::size_t i = 0; i < n; i += stride) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i) continue;
      best = std::min(best, evaluator.Distance(inliers[i], inliers[j]));
    }
    if (std::isfinite(best)) nn.push_back(best);
  }
  if (nn.empty()) return 1.0;
  std::nth_element(nn.begin(),
                   nn.begin() + static_cast<std::ptrdiff_t>(nn.size() / 2),
                   nn.end());
  double median = nn[nn.size() / 2];
  return median > 0 ? 1.5 * median : 1.0;
}

/// Rows within `epsilon` of the outlier on the complement of `subspace`,
/// capped to the `k` nearest by complement distance.
std::vector<std::size_t> ComplementNeighbors(
    const Relation& inliers, const DistanceEvaluator& evaluator,
    const Tuple& outlier, const AttributeSet& subspace, double epsilon,
    std::size_t k) {
  AttributeSet complement = subspace.ComplementIn(inliers.arity());
  std::vector<std::pair<double, std::size_t>> hits;
  for (std::size_t row = 0; row < inliers.size(); ++row) {
    double d = evaluator.DistanceOn(complement, outlier, inliers[row]);
    if (d <= epsilon) hits.emplace_back(d, row);
  }
  std::sort(hits.begin(), hits.end());
  if (hits.size() > k) hits.resize(k);
  std::vector<std::size_t> rows;
  rows.reserve(hits.size());
  for (const auto& [d, row] : hits) rows.push_back(row);
  return rows;
}

/// True when the outlier deviates from `neighbors` on attribute `a` by more
/// than z times their local spread (floored by epsilon).
bool DeviatesOn(const Relation& inliers, const DistanceEvaluator& evaluator,
                const Tuple& outlier, std::size_t a,
                const std::vector<std::size_t>& neighbors, double epsilon,
                double zscore) {
  double dev = std::numeric_limits<double>::infinity();
  for (std::size_t row : neighbors) {
    dev = std::min(dev,
                   evaluator.AttributeDistance(a, outlier[a], inliers[row][a]));
  }
  if (!std::isfinite(dev)) return false;
  // Local spread of the neighbors' values on attribute a.
  double spread = 0;
  for (std::size_t i = 1; i < neighbors.size(); ++i) {
    spread = std::max(spread,
                      evaluator.AttributeDistance(a, inliers[neighbors[0]][a],
                                                  inliers[neighbors[i]][a]));
  }
  double reference = std::max(zscore * spread, epsilon);
  return dev > reference;
}

}  // namespace

AttributeSet ExplainOutlierSse(const Relation& inliers,
                               const DistanceEvaluator& evaluator,
                               const Tuple& outlier,
                               const SseOptions& options) {
  AttributeSet separable;
  const std::size_t n = inliers.size();
  const std::size_t m = inliers.arity();
  if (n == 0 || m == 0) return separable;

  double epsilon =
      options.epsilon > 0 ? options.epsilon : AutoEpsilon(inliers, evaluator);

  bool any_neighborhood = false;

  // Level 1: single-attribute subspaces.
  for (std::size_t a = 0; a < m && a < 64; ++a) {
    AttributeSet subspace{a};
    std::vector<std::size_t> neighbors =
        ComplementNeighbors(inliers, evaluator, outlier, subspace, epsilon,
                            options.reference_neighbors);
    if (neighbors.empty()) continue;
    any_neighborhood = true;
    if (DeviatesOn(inliers, evaluator, outlier, a, neighbors, epsilon,
                   options.separability_zscore)) {
      separable.insert(a);
    }
  }
  if (!separable.empty()) return separable;

  // Level 2: attribute pairs (errors on two attributes hide from level 1:
  // each single-attribute complement still contains the other broken one).
  for (std::size_t a = 0; a < m && a < 64; ++a) {
    for (std::size_t b = a + 1; b < m && b < 64; ++b) {
      AttributeSet subspace{a, b};
      std::vector<std::size_t> neighbors =
          ComplementNeighbors(inliers, evaluator, outlier, subspace, epsilon,
                              options.reference_neighbors);
      if (neighbors.empty()) continue;
      any_neighborhood = true;
      bool dev_a = DeviatesOn(inliers, evaluator, outlier, a, neighbors,
                              epsilon, options.separability_zscore);
      bool dev_b = DeviatesOn(inliers, evaluator, outlier, b, neighbors,
                              epsilon, options.separability_zscore);
      if (dev_a) separable.insert(a);
      if (dev_b) separable.insert(b);
    }
    if (!separable.empty()) break;  // smallest explaining subspace wins
  }
  if (!separable.empty()) return separable;

  // Level 3: no small subspace explains the point. If it has neighbors in
  // some complement yet never deviates, it is simply not separable (an
  // inlier-like point). If it has no neighborhood anywhere, it is distant
  // in every subspace — a natural outlier, separable in all attributes.
  if (!any_neighborhood) {
    return AttributeSet::Full(std::min<std::size_t>(m, 64));
  }
  return separable;
}

}  // namespace disc
