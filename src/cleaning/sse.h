#ifndef DISC_CLEANING_SSE_H_
#define DISC_CLEANING_SSE_H_

#include <cstddef>

#include "common/relation.h"
#include "common/tuple.h"
#include "distance/evaluator.h"

namespace disc {

/// SSE options.
struct SseOptions {
  /// Neighborhood radius used to find the outlier's reference inliers in a
  /// candidate subspace's complement. 0 = estimated automatically as 1.5x
  /// the median nearest-neighbor distance among inliers.
  double epsilon = 0;
  /// Maximum neighbors forming the reference neighborhood.
  std::size_t reference_neighbors = 10;
  /// An attribute is separable when the outlier's deviation from its
  /// complement-subspace neighbors exceeds this many times their local
  /// spread (floored by the neighborhood radius).
  double separability_zscore = 2.5;
};

/// Subspace Separability Explanation (Micenková et al., ICDM'13): given a
/// detected outlier, returns the attributes in which the outlier is
/// separable from the inliers. Attribute a explains the outlier when the
/// point has close inliers on the remaining attributes R \ {a} yet its
/// a-value deviates strongly from those neighbors' a-values. Single
/// attributes are tried first, then attribute pairs; an outlier separable
/// in no small subspace (distant everywhere — a natural outlier) is
/// explained by all attributes.
///
/// Unlike DISC, SSE only names attributes; it does not say what the values
/// should become (the limitation §5 discusses). Used in Figures 9 and 10
/// as the attribute-explanation comparator.
AttributeSet ExplainOutlierSse(const Relation& inliers,
                               const DistanceEvaluator& evaluator,
                               const Tuple& outlier,
                               const SseOptions& options = {});

}  // namespace disc

#endif  // DISC_CLEANING_SSE_H_
