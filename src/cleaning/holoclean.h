#ifndef DISC_CLEANING_HOLOCLEAN_H_
#define DISC_CLEANING_HOLOCLEAN_H_

#include <cstddef>
#include <cstdint>

#include "common/relation.h"
#include "constraints/distance_constraint.h"
#include "distance/evaluator.h"

namespace disc {

/// HoloClean options.
struct HolocleanOptions {
  /// Cells of tuples violating this constraint are treated as noisy; tuples
  /// satisfying it are the labeled/clean examples the model weights are
  /// learned from (empirical risk minimization, as in the original system).
  DistanceConstraint constraint;
  /// Number of candidate values considered per noisy cell.
  std::size_t candidates_per_cell = 8;
  /// Coordinate-descent passes over the noisy cells of each tuple.
  std::size_t max_passes = 2;
  std::uint64_t seed = 42;
};

/// HoloClean (Rekatsinas et al., VLDB'17): probabilistic repair. Noisy cells
/// get a candidate domain; a log-linear model scores each candidate with
/// feature weights learned from the clean portion of the data
/// (value-frequency, co-occurrence with the tuple's other cells, and
/// density/neighbor support). Each noisy cell takes its maximum-probability
/// candidate. Because every cell of a flagged tuple is re-decided, the
/// method tends to modify many attributes — the over-change Figure 10(c)
/// measures.
Relation Holoclean(const Relation& data, const DistanceEvaluator& evaluator,
                   const HolocleanOptions& options);

}  // namespace disc

#endif  // DISC_CLEANING_HOLOCLEAN_H_
