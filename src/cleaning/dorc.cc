#include "cleaning/dorc.h"

#include <limits>
#include <memory>
#include <vector>

#include "index/index_factory.h"

namespace disc {

namespace {

/// Pairwise-scan variant: computes neighbor counts and nearest-core search
/// without an index, faithful to the density-matrix formulation (O(n²·m)).
Relation DorcPairwise(const Relation& data, const DistanceEvaluator& evaluator,
                      const DistanceConstraint& constraint) {
  const std::size_t n = data.size();
  std::vector<std::size_t> counts(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double d = evaluator.DistanceWithin(data[i], data[j], constraint.epsilon);
      if (d <= constraint.epsilon) ++counts[i];
    }
  }

  Relation repaired = data;
  for (std::size_t i = 0; i < n; ++i) {
    if (counts[i] >= constraint.eta) continue;
    // Substitute by the nearest tuple that satisfies the constraint.
    double best = std::numeric_limits<double>::infinity();
    std::size_t best_row = i;
    for (std::size_t j = 0; j < n; ++j) {
      if (j == i || counts[j] < constraint.eta) continue;
      double d = evaluator.Distance(data[i], data[j]);
      if (d < best) {
        best = d;
        best_row = j;
      }
    }
    if (best_row != i) repaired[i] = data[best_row];
  }
  return repaired;
}

Relation DorcIndexed(const Relation& data, const DistanceEvaluator& evaluator,
                     const DistanceConstraint& constraint) {
  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(data, evaluator, constraint.epsilon);
  InlierOutlierSplit split = SplitInliersOutliers(data, *index, constraint);

  Relation inliers = data.Select(split.inlier_rows);
  DistanceEvaluator inlier_eval(data.schema(), evaluator.norm());
  std::unique_ptr<NeighborIndex> inlier_index =
      MakeNeighborIndex(inliers, inlier_eval, constraint.epsilon);

  Relation repaired = data;
  for (std::size_t row : split.outlier_rows) {
    std::vector<Neighbor> nn = inlier_index->KNearest(data[row], 1);
    if (!nn.empty()) {
      repaired[row] = inliers[nn[0].row];
    }
  }
  return repaired;
}

}  // namespace

Relation Dorc(const Relation& data, const DistanceEvaluator& evaluator,
              const DorcOptions& options) {
  if (options.use_index) {
    return DorcIndexed(data, evaluator, options.constraint);
  }
  return DorcPairwise(data, evaluator, options.constraint);
}

}  // namespace disc
