#include "cleaning/holistic.h"

#include <algorithm>
#include <cmath>

namespace disc {

namespace {

double Quantile(std::vector<double> sorted_values, double q) {
  if (sorted_values.empty()) return 0;
  double pos = q * static_cast<double>(sorted_values.size() - 1);
  auto lo = static_cast<std::size_t>(std::floor(pos));
  auto hi = static_cast<std::size_t>(std::ceil(pos));
  double frac = pos - static_cast<double>(lo);
  return sorted_values[lo] * (1 - frac) + sorted_values[hi] * frac;
}

}  // namespace

std::vector<RangeDenialConstraint> DiscoverRangeConstraints(
    const Relation& data, double iqr_multiplier) {
  std::vector<RangeDenialConstraint> constraints;
  for (std::size_t a = 0; a < data.arity(); ++a) {
    if (data.schema().kind(a) != ValueKind::kNumeric) continue;
    std::vector<double> values;
    values.reserve(data.size());
    for (const Tuple& t : data) values.push_back(t[a].num());
    std::sort(values.begin(), values.end());
    double q1 = Quantile(values, 0.25);
    double q3 = Quantile(values, 0.75);
    double iqr = q3 - q1;
    RangeDenialConstraint dc;
    dc.attribute = a;
    dc.lo = q1 - iqr_multiplier * iqr;
    dc.hi = q3 + iqr_multiplier * iqr;
    constraints.push_back(dc);
  }
  return constraints;
}

Relation Holistic(const Relation& data, const DistanceEvaluator& evaluator,
                  const HolisticOptions& options) {
  (void)evaluator;  // DC repair positions values on constraint boundaries.
  Relation repaired = data;
  std::vector<RangeDenialConstraint> constraints =
      DiscoverRangeConstraints(data, options.iqr_multiplier);

  for (std::size_t pass = 0; pass < options.max_passes; ++pass) {
    bool any_violation = false;
    // Violation detection: collect cells breaking any constraint.
    for (std::size_t row = 0; row < repaired.size(); ++row) {
      for (const RangeDenialConstraint& dc : constraints) {
        double v = repaired[row][dc.attribute].num();
        if (v < dc.lo) {
          // Holistic minimal repair: move to the nearest satisfying value.
          repaired[row][dc.attribute].set_num(dc.lo);
          any_violation = true;
        } else if (v > dc.hi) {
          repaired[row][dc.attribute].set_num(dc.hi);
          any_violation = true;
        }
      }
    }
    if (!any_violation) break;
  }
  return repaired;
}

}  // namespace disc
