#include "cleaning/eracer.h"

#include <cmath>
#include <vector>

namespace disc {

namespace {

/// Solves the normal equations A·x = b in place with partial pivoting.
/// Returns false when A is (numerically) singular.
bool SolveLinearSystem(std::vector<std::vector<double>> a,
                       std::vector<double> b, std::vector<double>* x) {
  const std::size_t n = b.size();
  for (std::size_t col = 0; col < n; ++col) {
    std::size_t pivot = col;
    for (std::size_t row = col + 1; row < n; ++row) {
      if (std::fabs(a[row][col]) > std::fabs(a[pivot][col])) pivot = row;
    }
    if (std::fabs(a[pivot][col]) < 1e-12) return false;
    std::swap(a[col], a[pivot]);
    std::swap(b[col], b[pivot]);
    for (std::size_t row = col + 1; row < n; ++row) {
      double f = a[row][col] / a[col][col];
      for (std::size_t k = col; k < n; ++k) a[row][k] -= f * a[col][k];
      b[row] -= f * b[col];
    }
  }
  x->assign(n, 0);
  for (std::size_t i = n; i-- > 0;) {
    double sum = b[i];
    for (std::size_t k = i + 1; k < n; ++k) sum -= a[i][k] * (*x)[k];
    (*x)[i] = sum / a[i][i];
  }
  return true;
}

/// One fitted per-attribute model: prediction and residual z-score per row.
struct TargetModel {
  bool valid = false;
  std::vector<double> predictions;
  std::vector<double> zscores;
};

TargetModel FitTarget(const Relation& data,
                      const std::vector<std::size_t>& numeric,
                      std::size_t target) {
  TargetModel model;
  const std::size_t n = data.size();
  const std::size_t p = numeric.size();  // intercept + (p-1) features

  auto features_of = [&](std::size_t row, std::vector<double>* f) {
    (*f)[0] = 1.0;
    std::size_t fi = 1;
    for (std::size_t a : numeric) {
      if (a == target) continue;
      (*f)[fi++] = data[row][a].num();
    }
  };

  std::vector<std::vector<double>> xtx(p, std::vector<double>(p, 0));
  std::vector<double> xty(p, 0);
  std::vector<double> f(p);
  for (std::size_t row = 0; row < n; ++row) {
    features_of(row, &f);
    double y = data[row][target].num();
    for (std::size_t i = 0; i < p; ++i) {
      xty[i] += f[i] * y;
      for (std::size_t j = 0; j < p; ++j) xtx[i][j] += f[i] * f[j];
    }
  }
  for (std::size_t i = 0; i < p; ++i) xtx[i][i] += 1e-6;  // ridge

  std::vector<double> beta;
  if (!SolveLinearSystem(xtx, xty, &beta)) return model;

  model.predictions.resize(n);
  std::vector<double> residuals(n);
  double mean = 0;
  for (std::size_t row = 0; row < n; ++row) {
    features_of(row, &f);
    double pred = 0;
    for (std::size_t i = 0; i < p; ++i) pred += beta[i] * f[i];
    model.predictions[row] = pred;
    residuals[row] = data[row][target].num() - pred;
    mean += residuals[row];
  }
  mean /= static_cast<double>(n);
  double var = 0;
  for (double r : residuals) var += (r - mean) * (r - mean);
  double stddev = std::sqrt(var / static_cast<double>(n));
  if (stddev < 1e-12) return model;

  model.zscores.resize(n);
  for (std::size_t row = 0; row < n; ++row) {
    model.zscores[row] = std::fabs(residuals[row] - mean) / stddev;
  }
  model.valid = true;
  return model;
}

}  // namespace

Relation Eracer(const Relation& data, const DistanceEvaluator& evaluator,
                const EracerOptions& options) {
  (void)evaluator;  // ERACER's model is learned from the data directly.
  Relation repaired = data;
  const std::size_t n = data.size();
  const std::size_t m = data.arity();
  if (n < 4 || m < 2) return repaired;

  std::vector<std::size_t> numeric;
  for (std::size_t a = 0; a < m; ++a) {
    if (data.schema().kind(a) == ValueKind::kNumeric) numeric.push_back(a);
  }
  if (numeric.size() < 2) return repaired;

  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    // Fit one regression per numeric attribute on the current data.
    std::vector<TargetModel> models;
    models.reserve(numeric.size());
    for (std::size_t target : numeric) {
      models.push_back(FitTarget(repaired, numeric, target));
    }

    // Per row, repair only the single most anomalous cell. Repairing every
    // extreme cell at once lets the x-on-y regression "fix" a clean x from
    // a broken y before the y regression runs — the classic error-
    // propagation problem the relational-dependency iteration avoids.
    bool any_repair = false;
    for (std::size_t row = 0; row < n; ++row) {
      double worst_z = options.residual_zscore;
      std::size_t worst_idx = numeric.size();
      for (std::size_t t = 0; t < numeric.size(); ++t) {
        if (!models[t].valid) continue;
        if (models[t].zscores[row] > worst_z) {
          worst_z = models[t].zscores[row];
          worst_idx = t;
        }
      }
      if (worst_idx < numeric.size()) {
        repaired[row][numeric[worst_idx]].set_num(
            models[worst_idx].predictions[row]);
        any_repair = true;
      }
    }
    if (!any_repair) break;
  }
  return repaired;
}

}  // namespace disc
