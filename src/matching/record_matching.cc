#include "matching/record_matching.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

#include "distance/ngram.h"

namespace disc {

std::vector<MatchPair> MatchRecords(const Relation& relation,
                                    const MatchingOptions& options) {
  std::vector<MatchPair> matches;
  const std::size_t n = relation.size();
  std::vector<std::size_t> attrs = options.attributes;
  if (attrs.empty()) {
    for (std::size_t a = 0; a < relation.arity(); ++a) attrs.push_back(a);
  }

  // Pre-render values once.
  std::vector<std::vector<std::string>> rendered(n);
  for (std::size_t i = 0; i < n; ++i) {
    rendered[i].reserve(attrs.size());
    for (std::size_t a : attrs) rendered[i].push_back(relation[i][a].ToString());
  }

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      bool all_similar = true;
      for (std::size_t f = 0; f < attrs.size() && all_similar; ++f) {
        const std::string& a = rendered[i][f];
        const std::string& b = rendered[j][f];
        // Length filter: similarity above t requires comparable lengths.
        double len_a = static_cast<double>(a.size());
        double len_b = static_cast<double>(b.size());
        double max_len = std::max(len_a, len_b);
        if (max_len > 0 &&
            std::min(len_a, len_b) / max_len <
                options.similarity_threshold * 0.5) {
          all_similar = false;
          break;
        }
        all_similar =
            NgramSimilarity(a, b, options.ngram) > options.similarity_threshold;
      }
      if (all_similar) matches.emplace_back(i, j);
    }
  }
  return matches;
}

MatchingScores ScoreMatching(const std::vector<MatchPair>& predicted,
                             const std::vector<MatchPair>& truth) {
  MatchingScores s;
  std::set<MatchPair> truth_set(truth.begin(), truth.end());
  std::size_t tp = 0;
  for (const MatchPair& p : predicted) {
    if (truth_set.count(p)) ++tp;
  }
  s.precision = predicted.empty()
                    ? (truth.empty() ? 1.0 : 0.0)
                    : static_cast<double>(tp) / static_cast<double>(predicted.size());
  s.recall = truth.empty()
                 ? 1.0
                 : static_cast<double>(tp) / static_cast<double>(truth.size());
  s.f1 = (s.precision + s.recall) > 0
             ? 2 * s.precision * s.recall / (s.precision + s.recall)
             : 0;
  return s;
}

std::vector<MatchPair> PairsFromEntityIds(const std::vector<int>& entity_ids) {
  std::map<int, std::vector<std::size_t>> groups;
  for (std::size_t i = 0; i < entity_ids.size(); ++i) {
    groups[entity_ids[i]].push_back(i);
  }
  std::vector<MatchPair> pairs;
  for (const auto& [id, rows] : groups) {
    for (std::size_t i = 0; i < rows.size(); ++i) {
      for (std::size_t j = i + 1; j < rows.size(); ++j) {
        pairs.emplace_back(rows[i], rows[j]);
      }
    }
  }
  return pairs;
}

}  // namespace disc
