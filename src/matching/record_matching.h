#ifndef DISC_MATCHING_RECORD_MATCHING_H_
#define DISC_MATCHING_RECORD_MATCHING_H_

#include <cstddef>
#include <utility>
#include <vector>

#include "common/relation.h"

namespace disc {

/// Rule-based record-matching options (paper §4.1.3).
struct MatchingOptions {
  /// Two tuples match when the normalized n-gram similarity on *every*
  /// attribute exceeds this threshold (the paper uses 0.7).
  double similarity_threshold = 0.7;
  /// n-gram size for the similarity.
  std::size_t ngram = 2;
  /// Attributes to compare; empty = all attributes (numerics are compared
  /// via their string rendering, as rule-based matchers do).
  std::vector<std::size_t> attributes;
};

/// An unordered matched pair of row indices (first < second).
using MatchPair = std::pair<std::size_t, std::size_t>;

/// Finds all matched pairs under the all-attributes-similar rule
/// (Hernández & Stolfo's merge/purge family). O(n²) comparisons with a
/// cheap length filter.
std::vector<MatchPair> MatchRecords(const Relation& relation,
                                    const MatchingOptions& options = {});

/// Pairwise F1 of predicted matches against ground-truth matches.
struct MatchingScores {
  double precision = 0;
  double recall = 0;
  double f1 = 0;
};
MatchingScores ScoreMatching(const std::vector<MatchPair>& predicted,
                             const std::vector<MatchPair>& truth);

/// Ground-truth matches from entity ids: every pair of rows sharing an
/// entity id is a true match.
std::vector<MatchPair> PairsFromEntityIds(const std::vector<int>& entity_ids);

}  // namespace disc

#endif  // DISC_MATCHING_RECORD_MATCHING_H_
