#ifndef DISC_COMMON_THREAD_POOL_H_
#define DISC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace disc {

/// Fixed-size thread pool with a bounded FIFO task queue.
///
/// Deliberately work-stealing-free: all workers pop from one shared queue
/// under a single mutex. The saving workload this pool exists for (one
/// branch-and-bound search per outlier, milliseconds to seconds each) is far
/// too coarse for queue contention to matter, and a single FIFO keeps the
/// execution order — and therefore profiles and logs — easy to reason about.
///
/// The queue is bounded: Submit() blocks once `queue_capacity` tasks are
/// waiting, providing natural backpressure when a producer enqueues faster
/// than the workers drain (e.g. submitting one task per outlier of a huge
/// batch). Tasks are wrapped in std::packaged_task, so an exception thrown
/// inside a task is captured and rethrown from the corresponding future —
/// it never unwinds through a worker thread.
///
/// Thread-safety: Submit() may be called concurrently from any thread.
/// Shutdown() must not race with itself (the destructor is the usual
/// caller). Submitting from inside a task is safe as long as the queue is
/// not full — a full queue would then deadlock, so don't build recursive
/// fan-out on a bounded pool.
class ThreadPool {
 public:
  /// Queue capacity used when none is given. Large enough that batch
  /// producers rarely block, small enough to bound memory when they do.
  static constexpr std::size_t kDefaultQueueCapacity = 1024;

  /// Starts `num_threads` workers (at least 1). `queue_capacity` bounds the
  /// number of not-yet-started tasks (at least 1).
  explicit ThreadPool(std::size_t num_threads,
                      std::size_t queue_capacity = kDefaultQueueCapacity);

  /// Calls Shutdown(): runs every task already queued, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Schedules `fn` and returns a future for its result. Blocks while the
  /// queue is at capacity. After Shutdown() the task is rejected and the
  /// returned future reports std::future_errc::broken_promise.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Stops accepting new tasks, finishes everything already queued, joins
  /// the workers. Idempotent; invoked by the destructor.
  void Shutdown();

  /// Worker count for CPU-bound work: hardware concurrency, at least 1.
  static std::size_t DefaultThreadCount();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  const std::size_t queue_capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;  ///< signalled: task queued or stopping
  std::condition_variable not_full_;   ///< signalled: queue slot freed
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

}  // namespace disc

#endif  // DISC_COMMON_THREAD_POOL_H_
