#ifndef DISC_COMMON_THREAD_POOL_H_
#define DISC_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace disc {

/// Fixed-size thread pool with a bounded FIFO task queue.
///
/// Deliberately work-stealing-free: all workers pop from one shared queue
/// under a single mutex. The saving workload this pool exists for (one
/// branch-and-bound search per outlier, milliseconds to seconds each) is far
/// too coarse for queue contention to matter, and a single FIFO keeps the
/// execution order — and therefore profiles and logs — easy to reason about.
///
/// The queue is bounded: Submit() blocks once `queue_capacity` tasks are
/// waiting, providing natural backpressure when a producer enqueues faster
/// than the workers drain (e.g. submitting one task per outlier of a huge
/// batch). Tasks are wrapped in std::packaged_task, so an exception thrown
/// inside a task is captured and rethrown from the corresponding future —
/// it never unwinds through a worker thread.
///
/// Thread-safety: Submit() may be called concurrently from any thread.
/// Shutdown() must not race with itself (the destructor is the usual
/// caller). Submitting from inside a task is safe as long as the queue is
/// not full — a full queue would then deadlock, so don't build recursive
/// fan-out on a bounded pool.
class ThreadPool {
 public:
  /// Queue capacity used when none is given. Large enough that batch
  /// producers rarely block, small enough to bound memory when they do.
  static constexpr std::size_t kDefaultQueueCapacity = 1024;

  /// Starts `num_threads` workers (at least 1). `queue_capacity` bounds the
  /// number of not-yet-started tasks (at least 1).
  explicit ThreadPool(std::size_t num_threads,
                      std::size_t queue_capacity = kDefaultQueueCapacity);

  /// Calls Shutdown(): runs every task already queued, then joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Schedules `fn` and returns a future for its result. Blocks while the
  /// queue is at capacity. After Shutdown() the task is rejected and the
  /// returned future reports std::future_errc::broken_promise.
  template <typename F>
  auto Submit(F&& fn) -> std::future<std::invoke_result_t<std::decay_t<F>>> {
    using R = std::invoke_result_t<std::decay_t<F>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> future = task->get_future();
    Enqueue([task] { (*task)(); });
    return future;
  }

  /// Stops accepting new tasks, finishes everything already queued, joins
  /// the workers. Idempotent; invoked by the destructor.
  void Shutdown();

  /// Worker count for CPU-bound work: hardware concurrency, at least 1.
  static std::size_t DefaultThreadCount();

 private:
  void Enqueue(std::function<void()> task);
  void WorkerLoop();

  const std::size_t queue_capacity_;
  std::mutex mutex_;
  std::condition_variable not_empty_;  ///< signalled: task queued or stopping
  std::condition_variable not_full_;   ///< signalled: queue slot freed
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  bool stopping_ = false;
};

/// Work-stealing pool for batches of independent, cost-skewed tasks (the
/// per-outlier DISC searches of DiscSaver::SaveAll) plus nested data
/// parallelism inside a task (the chunked O(n) bound scans of BoundsEngine).
///
/// Scheduling policy:
///  - RunBatch distributes the caller-ordered indices round-robin across
///    per-worker deques, hardest first: worker w's deque holds order[w],
///    order[w + W], ... in that priority order.
///  - Each worker pops its OWN deque from the FRONT (its hardest remaining
///    task), so the expensive searches start as early as possible and
///    cannot all pile up at the end of the batch.
///  - An idle worker STEALS from the BACK of a victim deque (the victim's
///    cheapest queued task), scanning victims round-robin from its own
///    index. Stealing the back minimizes contention with the owner and
///    takes the work the owner would reach last.
///  - A worker with no batch work serves nested chunks (ParallelFor) from
///    any in-flight task group, so late stragglers use idle cores.
///
/// Determinism: scheduling never reorders *results* — RunBatch callers
/// write into per-index slots and merge by input order, and ParallelFor
/// chunk boundaries are a pure function of (range, grain), with each chunk
/// writing its own slot. Which thread runs what is nondeterministic; what
/// is computed is not.
///
/// Synchronization is one pool-wide mutex guarding the deques, the nested
/// group list and the completion counts. The tasks this pool schedules are
/// coarse (milliseconds per search, tens of microseconds per nested chunk),
/// so a single uncontended lock costs nothing measurable, keeps the
/// owner/thief deque ends trivially correct, and is TSan-clean by
/// construction. The *policy* above — per-worker deques, owner-front,
/// steal-back, cost-ordered — is what delivers the scaling.
///
/// Thread-safety: RunBatch and ParallelFor may be called concurrently from
/// any threads (including from inside a running batch task, for
/// ParallelFor). The destructor must not race with in-flight calls.
class WorkStealingPool {
 public:
  /// Cumulative scheduler telemetry (monotone; see stats()).
  struct SchedStats {
    std::uint64_t tasks = 0;          ///< batch tasks executed
    std::uint64_t steals = 0;         ///< tasks taken from another deque
    std::uint64_t nested_chunks = 0;  ///< ParallelFor chunks executed
  };

  /// Starts `num_threads` workers (at least 1).
  explicit WorkStealingPool(std::size_t num_threads);

  /// Joins the workers. No batch or ParallelFor may be in flight.
  ~WorkStealingPool();

  WorkStealingPool(const WorkStealingPool&) = delete;
  WorkStealingPool& operator=(const WorkStealingPool&) = delete;

  /// Number of worker threads.
  std::size_t size() const { return workers_.size(); }

  /// Runs task(i) once for every index in `order` and blocks until all
  /// complete. `order` is the priority order: order[0] is dispatched as the
  /// hardest task (see the scheduling policy above). The calling thread
  /// does not execute batch tasks; it waits (workers do the running, as
  /// with ThreadPool-based fan-out) — call it from a non-worker thread. If
  /// a task throws, the first exception is rethrown here after the batch
  /// drains; the remaining tasks still run.
  void RunBatch(const std::vector<std::size_t>& order,
                const std::function<void(std::size_t)>& task);

  /// Nested data parallelism: splits [begin, end) into fixed chunks of
  /// `grain` indices (last chunk may be short) and runs
  /// body(chunk_begin, chunk_end, chunk_index) for each. The caller
  /// executes chunks itself and idle workers help; returns when every
  /// chunk is done. Chunk boundaries depend only on (begin, end, grain) —
  /// never on the worker count — so per-chunk partial results merge
  /// deterministically. With one worker, or fewer than two chunks, the
  /// whole range runs inline as chunk 0. `body` must not throw.
  ///
  /// Callable from inside a RunBatch task: the calling worker helps only
  /// with its OWN group while waiting (never adopts another task's chunks),
  /// which bounds the stack and rules out cross-group deadlock.
  void ParallelFor(
      std::size_t begin, std::size_t end, std::size_t grain,
      const std::function<void(std::size_t, std::size_t, std::size_t)>& body);

  /// Cumulative scheduler counters since construction. Monotone, so two
  /// snapshots bracket a batch: flush the difference into a
  /// MetricsRegistry (disc_sched_*_total).
  SchedStats stats() const;

  /// Batch tasks queued but not yet started, right now.
  std::size_t queue_depth() const;

  /// Worker count for CPU-bound work: hardware concurrency, at least 1.
  static std::size_t DefaultThreadCount();

  /// The calling thread's worker index within its owning pool, or -1 when
  /// the caller is not a pool worker. Thread-local, set once per worker at
  /// startup; per-batch span buffers (SpanCollector) key their slot on it
  /// so workers record trace spans without synchronization.
  static int CurrentWorkerIndex();

 private:
  struct Batch;
  struct NestedGroup;
  struct QueuedTask {
    Batch* batch;
    std::size_t index;
  };

  void WorkerLoop(std::size_t self);
  /// Runs `item` outside the lock and completes its batch bookkeeping.
  void RunTask(std::unique_lock<std::mutex>& lock, QueuedTask item,
               bool stolen);
  /// Claims and runs one chunk of `group` (or of any live group when
  /// null). Returns false when there is nothing to claim.
  bool RunNestedChunk(std::unique_lock<std::mutex>& lock, NestedGroup* group);

  mutable std::mutex mutex_;
  std::condition_variable work_ready_;  ///< task or chunk queued / stopping
  std::condition_variable progress_;    ///< a batch task or chunk completed
  std::vector<std::deque<QueuedTask>> deques_;  ///< one per worker
  std::vector<NestedGroup*> nested_;            ///< in-flight chunk groups
  std::vector<std::thread> workers_;
  SchedStats stats_;
  bool stopping_ = false;
};

}  // namespace disc

#endif  // DISC_COMMON_THREAD_POOL_H_
