#ifndef DISC_COMMON_JSON_WRITER_H_
#define DISC_COMMON_JSON_WRITER_H_

#include <string>
#include <vector>

namespace disc {

/// Minimal streaming JSON writer shared by the bench artifacts
/// (BENCH_*.json), the metrics exposition (disc_cli --metrics-json) and the
/// JSONL trace sink. Handles commas and string escaping; the caller is
/// responsible for well-formed nesting (every Begin* paired with an End*,
/// Key() before each value inside an object).
class JsonWriter {
 public:
  JsonWriter& BeginObject();
  JsonWriter& EndObject();
  JsonWriter& BeginArray();
  JsonWriter& EndArray();
  JsonWriter& Key(const std::string& k);
  JsonWriter& String(const std::string& v);
  JsonWriter& Number(double v);
  JsonWriter& Int(long long v);
  JsonWriter& Uint(unsigned long long v);
  JsonWriter& Bool(bool v);
  /// Splices `json` — which must already be a well-formed JSON value — as
  /// the next value, with comma handling. For embedding pre-rendered
  /// documents (e.g. structured log lines into /statusz).
  JsonWriter& Raw(const std::string& json);
  /// The JSON document built so far.
  const std::string& str() const { return out_; }

 private:
  void MaybeComma();
  void Escaped(const std::string& s);
  std::string out_;
  std::vector<bool> needs_comma_;
  bool after_key_ = false;
};

}  // namespace disc

#endif  // DISC_COMMON_JSON_WRITER_H_
