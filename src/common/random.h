#ifndef DISC_COMMON_RANDOM_H_
#define DISC_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>
#include <numbers>
#include <vector>

namespace disc {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// All randomness in the library (generators, error injection, clustering
/// seeding, cross-validation shuffles) flows through Rng so experiments are
/// reproducible from a single seed.
class Rng {
 public:
  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the generator.
  void Seed(std::uint64_t seed) {
    std::uint64_t x = seed;
    for (auto& word : state_) {
      // SplitMix64 step.
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      word = z ^ (z >> 31);
    }
    has_gaussian_ = false;
  }

  /// Next raw 64-bit value.
  std::uint64_t NextU64() {
    const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double Uniform() {
    return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). n must be > 0.
  std::uint64_t NextIndex(std::uint64_t n) { return NextU64() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi) {
    return lo + static_cast<std::int64_t>(
                    NextIndex(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box–Muller (cached pair).
  double Gaussian() {
    if (has_gaussian_) {
      has_gaussian_ = false;
      return cached_gaussian_;
    }
    double u1 = Uniform();
    double u2 = Uniform();
    while (u1 <= 1e-300) u1 = Uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * std::numbers::pi * u2;
    cached_gaussian_ = r * std::sin(theta);
    has_gaussian_ = true;
    return r * std::cos(theta);
  }

  /// Normal with the given mean and standard deviation.
  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// Bernoulli trial with probability p of true.
  bool Bernoulli(double p) { return Uniform() < p; }

  /// Fisher–Yates shuffle of `items`.
  template <typename T>
  void Shuffle(std::vector<T>* items) {
    for (std::size_t i = items->size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(NextIndex(i));
      std::swap((*items)[i - 1], (*items)[j]);
    }
  }

  /// A random sample (without replacement) of k indices from [0, n).
  std::vector<std::size_t> SampleIndices(std::size_t n, std::size_t k) {
    std::vector<std::size_t> all(n);
    for (std::size_t i = 0; i < n; ++i) all[i] = i;
    Shuffle(&all);
    if (k < n) all.resize(k);
    return all;
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4] = {};
  bool has_gaussian_ = false;
  double cached_gaussian_ = 0;
};

}  // namespace disc

#endif  // DISC_COMMON_RANDOM_H_
