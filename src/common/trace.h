#ifndef DISC_COMMON_TRACE_H_
#define DISC_COMMON_TRACE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace disc {

/// One completed span of work on the save-pipeline timeline (DESIGN.md §8).
/// Timestamps are steady-clock nanoseconds; sinks rebase them onto their own
/// epoch so a whole run replays as a timeline starting near zero.
struct TraceSpan {
  /// Span kind, e.g. "save_all", "split", "save_outlier".
  std::string name;
  /// Steady-clock start, nanoseconds since the clock's epoch.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Attachments, emitted in insertion order.
  std::vector<std::pair<std::string, std::string>> str_attrs;
  std::vector<std::pair<std::string, std::uint64_t>> int_attrs;
  std::vector<std::pair<std::string, double>> num_attrs;

  TraceSpan& Str(std::string key, std::string value) {
    str_attrs.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  TraceSpan& Int(std::string key, std::uint64_t value) {
    int_attrs.emplace_back(std::move(key), value);
    return *this;
  }
  TraceSpan& Num(std::string key, double value) {
    num_attrs.emplace_back(std::move(key), value);
    return *this;
  }
};

/// The current steady clock reading as span-compatible nanoseconds.
std::uint64_t TraceNowNs();

/// Span consumer. Implementations must accept Emit() from any thread,
/// concurrently: the pipeline's merge loop emits "split"/"save_outlier"
/// spans in input order from one thread, while DiscSaver workers emit
/// "search" spans directly as each search finishes. Worker spans may
/// interleave in any order between runs; every line is self-contained
/// (the "ordinal" attribute keys it to its input position), so consumers
/// must not rely on line order across span kinds.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceSpan& span) = 0;
};

/// JSON-Lines file sink: one object per span, e.g.
///   {"span":"save_outlier","t_ns":812,"dur_ns":51023,"row":17,
///    "termination":"completed","nodes_expanded":41,...}
/// `t_ns` is rebased to the sink's construction time. Lines are buffered and
/// flushed on Close()/destruction; check ok()/Close() for I/O errors (the
/// pipeline treats the trace as best-effort and never fails a save on it).
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::string path);
  ~JsonlTraceSink() override;

  void Emit(const TraceSpan& span) override;

  /// True when the file opened and every write so far succeeded.
  bool ok() const;
  /// Flushes and closes; returns the first I/O error, if any. Idempotent.
  Status Close();

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::string buffer_;
  std::uint64_t epoch_ns_;
  bool failed_ = false;
  bool closed_ = false;
};

}  // namespace disc

#endif  // DISC_COMMON_TRACE_H_
