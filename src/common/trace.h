#ifndef DISC_COMMON_TRACE_H_
#define DISC_COMMON_TRACE_H_

#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace disc {

class JsonWriter;

/// One completed span of work on the save-pipeline timeline (DESIGN.md §13).
/// Timestamps are steady-clock nanoseconds; sinks rebase them onto their own
/// epoch so a whole run replays as a timeline starting near zero.
///
/// Spans are hierarchical: `trace_id` groups every span of one logical save
/// (the whole per-outlier pipeline), `span_id` identifies this span inside
/// the trace, and `parent_id` names the enclosing span (0 for a root). All
/// three ids are *derived*, not random — see DeriveTraceId/DeriveSpanId — so
/// the same batch traced twice (after resetting the batch counter) or traced
/// at different thread counts produces the identical span set.
struct TraceSpan {
  /// Span kind, e.g. "save_outlier", "search", "bounds_scan", "pool_chunk".
  std::string name;
  /// Steady-clock start, nanoseconds since the clock's epoch.
  std::uint64_t start_ns = 0;
  std::uint64_t duration_ns = 0;
  /// Hierarchical identity. All zero for legacy/standalone spans.
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;
  std::uint64_t parent_id = 0;
  /// Attachments, emitted in insertion order.
  std::vector<std::pair<std::string, std::string>> str_attrs;
  std::vector<std::pair<std::string, std::uint64_t>> int_attrs;
  std::vector<std::pair<std::string, double>> num_attrs;

  TraceSpan& Str(std::string key, std::string value) {
    str_attrs.emplace_back(std::move(key), std::move(value));
    return *this;
  }
  TraceSpan& Int(std::string key, std::uint64_t value) {
    int_attrs.emplace_back(std::move(key), value);
    return *this;
  }
  TraceSpan& Num(std::string key, double value) {
    num_attrs.emplace_back(std::move(key), value);
    return *this;
  }
};

/// The current steady clock reading as span-compatible nanoseconds.
std::uint64_t TraceNowNs();

// ---------------------------------------------------------------------------
// Deterministic id derivation
// ---------------------------------------------------------------------------

/// Structural position of a span inside its trace; the `kind` input to
/// DeriveSpanId. Values are part of the id-derivation contract: changing
/// them changes every derived span id.
enum class TraceSpanKind : std::uint64_t {
  kRoot = 1,      ///< the per-outlier `save_outlier` pipeline span
  kSearch = 2,    ///< the branch-and-bound `search` under the root
  kPhase = 3,     ///< an aggregated wall-phase span under the search
  kScan = 4,      ///< one chunked O(n) scan within a phase
  kChunk = 5,     ///< one ParallelFor chunk of a scan
  kEstimate = 6,  ///< the pre-batch cost-estimate span under the root
};

/// splitmix64-style finalizer: mixes `value` into `seed`. Deterministic,
/// collision-resistant enough for span identity (no adversarial input).
std::uint64_t TraceMix(std::uint64_t seed, std::uint64_t value);

/// Returns a fresh per-batch seed (splitmix of a process-global counter).
/// Every SaveAll batch that traces consumes one, so span ids never collide
/// across batches in one process while staying independent of time and
/// thread scheduling.
std::uint64_t NextTraceBatchSeed();

/// Test hook: pins the batch counter so two identical runs derive identical
/// ids (the span-set parity tests reset it before each run).
void SetTraceBatchCounterForTest(std::uint64_t value);

/// Trace id of the outlier at input position `ordinal` in a batch.
std::uint64_t DeriveTraceId(std::uint64_t batch_seed, std::uint64_t ordinal);

/// Span id from (parent span id, structural kind, per-kind ordinal). The
/// root span passes the trace id as `parent`.
std::uint64_t DeriveSpanId(std::uint64_t parent, TraceSpanKind kind,
                           std::uint64_t ordinal);

// ---------------------------------------------------------------------------
// Wall phases
// ---------------------------------------------------------------------------

/// The wall-phase taxonomy of one save. Every nanosecond of a search's wall
/// time belongs to at most one phase at a time (PhaseScope pauses the outer
/// phase while an inner one runs), so the per-phase totals sum to ≤ wall.
enum class TracePhase : std::size_t {
  kIndexQuery = 0,  ///< kNN / range / feasibility calls into the index
  kBoundsScan,      ///< Prop-3 / Prop-5 O(n) bound computations
  kDcacheFill,      ///< eager + lazy per-search distance-cache fills
  kEstimate,        ///< pre-batch η−1-NN cost estimation
  kVerdict,         ///< RevertRefine + result finalization
  kStealIdle,       ///< pool workers parked waiting for work
};
inline constexpr std::size_t kTracePhaseCount = 6;

/// Lower-case identifier, e.g. "index_query"; also the phase span name.
const char* TracePhaseName(TracePhase phase);

// ---------------------------------------------------------------------------
// SpanCollector — lock-free per-thread span buffers for one batch
// ---------------------------------------------------------------------------

/// Per-batch span buffer: one cache-line-padded slot per pool worker plus
/// one for the calling thread, so hot paths append with a plain (unshared)
/// vector push and zero synchronization — the same sharding discipline as
/// MetricsRegistry. Drain() runs after the pool joins (the RunBatch return
/// is the synchronization point) and returns every span sorted by
/// (trace_id, span_id), which makes the emitted JSONL order deterministic
/// regardless of which worker recorded what.
class SpanCollector {
 public:
  /// `slots` buffers; use pool->size() + 1 (workers + caller).
  explicit SpanCollector(std::size_t slots);

  /// Appends `span` to buffer `slot`. Each slot must only ever be written
  /// by one thread at a time (worker w → slot w, non-workers → last slot).
  void Record(std::size_t slot, TraceSpan span);

  /// Moves every recorded span out, sorted by (trace_id, span_id). Must be
  /// called only when no Record() can be in flight (after the batch joins).
  std::vector<TraceSpan> Drain();

  std::size_t slots() const { return slots_.size(); }

 private:
  struct alignas(64) Slot {
    std::vector<TraceSpan> spans;
  };
  std::vector<Slot> slots_;
};

/// Maps a WorkStealingPool worker index (CurrentWorkerIndex(); -1 for
/// non-workers) to a SpanCollector slot: worker w → w, everything else →
/// the last (caller) slot.
inline std::size_t SpanSlotForWorker(int worker_index, std::size_t slots) {
  if (worker_index >= 0 &&
      static_cast<std::size_t>(worker_index) + 1 < slots) {
    return static_cast<std::size_t>(worker_index);
  }
  return slots - 1;
}

// ---------------------------------------------------------------------------
// WallPhaseProfiler — always-cheap process-wide phase accumulators
// ---------------------------------------------------------------------------

/// Process-wide per-phase wall-time accumulators behind /profilez. Adds are
/// relaxed atomic fetch-adds on a hashed, cache-line-padded shard (the
/// MetricsRegistry counter discipline), so attaching the profiler costs one
/// shard add per *phase edge*, not per row. Reset() is lossless: it
/// snapshots a baseline and reports current − baseline, so concurrent
/// adders never lose increments.
class WallPhaseProfiler {
 public:
  WallPhaseProfiler();

  /// Accumulates `ns` (and one occurrence) into `phase`. Any thread.
  void Add(TracePhase phase, std::uint64_t ns);

  struct PhaseTotal {
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
  };

  /// Per-phase totals since construction or the last Reset().
  std::array<PhaseTotal, kTracePhaseCount> Snapshot() const;

  /// Re-bases the profile: subsequent Snapshot()s report only activity
  /// after this call.
  void Reset();

  /// The /profilez payload: schema_version, per-phase {ns, count}, and
  /// folded-stack flamegraph lines ("disc_save;bounds_scan 123456").
  std::string ToJson() const;

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::array<std::atomic<std::uint64_t>, kTracePhaseCount> ns;
    std::array<std::atomic<std::uint64_t>, kTracePhaseCount> count;
  };
  std::array<PhaseTotal, kTracePhaseCount> SumRaw() const;

  std::array<Shard, kShards> shards_;
  mutable std::mutex baseline_mu_;
  std::array<PhaseTotal, kTracePhaseCount> baseline_{};
};

/// Process-global profiler hook (mirrors GlobalMetrics). Detached (null) by
/// default: every instrumentation site null-checks before taking a clock
/// reading, so the detached overhead is a branch.
WallPhaseProfiler* GlobalWallProfiler();
void AttachGlobalWallProfiler(WallPhaseProfiler* profiler);

// ---------------------------------------------------------------------------
// TraceRecorder — recent finished spans + live active spans for /tracez
// ---------------------------------------------------------------------------

/// In-memory recorder behind /tracez: a mutex-guarded ring of the most
/// recent finished spans at or above a slowness threshold, plus a fixed
/// array of *currently active* searches published via atomics (claimed by
/// CAS, so readers never block a search and TSan stays clean; when all
/// slots are busy the search simply goes unlisted — best-effort by design).
class TraceRecorder {
 public:
  explicit TraceRecorder(std::size_t recent_capacity = 128,
                         std::uint64_t slow_threshold_ns = 0);

  /// Adds a finished span to the recent ring when its duration meets the
  /// threshold. Any thread.
  void RecordFinished(const TraceSpan& span);

  /// Publishes an active search; returns the claimed slot, or -1 when the
  /// table is full (callers then skip EndActive). `name` must have static
  /// lifetime.
  int BeginActive(const char* name, std::uint64_t trace_id,
                  std::uint64_t span_id, std::uint64_t start_ns);
  void EndActive(int slot);

  /// The /tracez payload: schema_version, recent finished spans (slowest
  /// threshold applied, newest last), and active spans with elapsed time.
  std::string ToJson() const;

 private:
  static constexpr std::size_t kActiveSlots = 64;
  struct ActiveSlot {
    /// 0 = free, 1 = being written, 2 = published.
    std::atomic<std::uint64_t> state{0};
    std::atomic<const char*> name{nullptr};
    std::atomic<std::uint64_t> trace_id{0};
    std::atomic<std::uint64_t> span_id{0};
    std::atomic<std::uint64_t> start_ns{0};
  };

  const std::size_t capacity_;
  const std::uint64_t slow_threshold_ns_;
  const std::uint64_t epoch_ns_;
  std::array<ActiveSlot, kActiveSlots> active_;
  mutable std::mutex mu_;
  std::vector<TraceSpan> recent_;  ///< ring, `next_` is the oldest entry
  std::size_t next_ = 0;
};

/// Process-global recorder hook for the live HTTP plane (mirrors
/// GlobalMetrics); null = detached.
TraceRecorder* GlobalTraceRecorder();
void AttachGlobalTraceRecorder(TraceRecorder* recorder);

// ---------------------------------------------------------------------------
// SearchTrace + PhaseScope — per-search context propagated with BudgetGauge
// ---------------------------------------------------------------------------

/// Per-search trace context: rides on the BudgetGauge (which already flows
/// DiscSaver → BoundsEngine → SearchDistanceCache → index queries), carrying
/// the derived ids, the span buffers and the per-phase accumulators. Owned
/// by exactly one thread (the search's), like the gauge itself; only the
/// chunk bodies of nested scans touch the collector from other threads, via
/// their own slots.
struct SearchTrace {
  SpanCollector* collector = nullptr;
  WallPhaseProfiler* profiler = nullptr;
  std::uint64_t trace_id = 0;
  std::uint64_t root_span_id = 0;    ///< the `save_outlier` pipeline span
  std::uint64_t search_span_id = 0;  ///< parent of every phase span
  /// Deterministic count of chunked scans started by this search; names the
  /// kScan id of each ParallelFor so chunk ids don't depend on scheduling.
  std::uint64_t scan_ordinal = 0;

  struct PhaseAcc {
    std::uint64_t ns = 0;
    std::uint64_t count = 0;
    std::uint64_t first_start_ns = 0;
  };
  std::array<PhaseAcc, kTracePhaseCount> phases{};

  /// Innermost live PhaseScope on the owning thread (intrusive stack).
  void* active_scope = nullptr;

  /// True when any consumer is attached; all instrumentation sites gate
  /// their clock reads on this, so a detached search pays only the branch.
  bool enabled() const { return collector != nullptr || profiler != nullptr; }

  /// The deterministic span id of this search's `phase` span.
  std::uint64_t PhaseSpanId(TracePhase phase) const {
    return DeriveSpanId(search_span_id, TraceSpanKind::kPhase,
                        static_cast<std::uint64_t>(phase));
  }

  /// Emits one aggregated span per touched phase (parented under the search
  /// span) into collector slot `slot`, and folds the totals into the
  /// profiler. Call once at search end from the owning thread.
  void FlushPhaseSpans(std::size_t slot);
};

/// RAII wall-phase marker. Entering a phase pauses the enclosing one (its
/// elapsed time is banked) and resumes it on exit, so exactly one phase is
/// charged at any instant and each edge costs one clock read. No-op (two
/// null checks) when the search is untraced.
class PhaseScope {
 public:
  PhaseScope(SearchTrace* trace, TracePhase phase);
  ~PhaseScope();

  PhaseScope(const PhaseScope&) = delete;
  PhaseScope& operator=(const PhaseScope&) = delete;

 private:
  SearchTrace* trace_;
  PhaseScope* prev_;
  TracePhase phase_;
  std::uint64_t first_start_ns_ = 0;  ///< construction time
  std::uint64_t segment_start_ns_ = 0;
  std::uint64_t banked_ns_ = 0;  ///< finished segments (excludes children)
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Span consumer. Implementations must accept Emit() from any thread,
/// concurrently: the pipeline's merge loop emits "split"/"save_outlier"
/// spans in input order from one thread, while DiscSaver drains batched
/// worker spans sorted by (trace_id, span_id). Every line is self-contained
/// (ids + the "ordinal" attribute key it to its position), so consumers
/// must not rely on line order across span kinds.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Emit(const TraceSpan& span) = 0;
};

/// Serializes one span as a JSON object (the JSONL line / /tracez entry
/// format): span, t_ns (rebased on `epoch_ns`, clamped at 0), dur_ns,
/// trace_id, span_id, parent_id, then the attachments in insertion order.
void AppendTraceSpanJson(JsonWriter& json, const TraceSpan& span,
                         std::uint64_t epoch_ns);

/// JSON-Lines file sink: one object per span, e.g.
///   {"span":"search","t_ns":812,"dur_ns":51023,"trace_id":1234,
///    "span_id":77,"parent_id":12,"ordinal":3,...}
/// `t_ns` is rebased to the sink's construction time. Lines are buffered and
/// flushed on Close()/destruction; check ok()/Close() for I/O errors (the
/// pipeline treats the trace as best-effort and never fails a save on it).
class JsonlTraceSink : public TraceSink {
 public:
  explicit JsonlTraceSink(std::string path);
  ~JsonlTraceSink() override;

  void Emit(const TraceSpan& span) override;

  /// True when the file opened and every write so far succeeded.
  bool ok() const;
  /// Flushes and closes; returns the first I/O error, if any. Idempotent.
  Status Close();

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::string buffer_;
  std::uint64_t epoch_ns_;
  bool failed_ = false;
  bool closed_ = false;
};

}  // namespace disc

#endif  // DISC_COMMON_TRACE_H_
