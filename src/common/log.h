#ifndef DISC_COMMON_LOG_H_
#define DISC_COMMON_LOG_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace disc {

/// Leveled structured logging (DESIGN.md §8, "Live observability plane").
///
/// Every record is emitted as exactly one JSON object per line through the
/// shared JsonWriter escaping rules, e.g.
///   {"ts_ms":1754352000123,"level":"warn","tid":7,"src":"datasets.cc:276",
///    "msg":"unknown dataset name","name":"letters"}
/// so log output is machine-parseable end to end (the CI observability job
/// and `/statusz?logs=N` both consume it as JSONL).
///
/// Design goals, matching the metrics layer:
///  1. Cheap when filtered: `DISC_LOG(DEBUG)` below the runtime level costs
///     one relaxed atomic load; no stream, no allocation.
///  2. Thread-safe: records are fully formatted on the calling thread and
///     handed to the sink as one string; the default sink (stderr + ring
///     buffer) serializes the final write under one mutex, so lines never
///     interleave.
///  3. Always inspectable: independent of the sink, the last kLogRingCapacity
///     lines are retained in a process-global ring buffer whose tail is
///     served at `/statusz?logs=N` — a live process carries its own recent
///     history.
///
/// Library code must log through this interface instead of writing to
/// stderr directly (CI greps `src/` for raw stderr writes and fails on
/// any hit).

enum class LogLevel {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// Lower-case identifier ("debug", "info", "warn", "error").
const char* LogLevelName(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error" (case-insensitive). Returns false
/// (and leaves `out` untouched) for anything else.
bool ParseLogLevel(std::string_view name, LogLevel* out);

/// Runtime level filter: records below `level` are dropped at the callsite.
/// Default kInfo. Thread-safe (relaxed atomic).
void SetMinLogLevel(LogLevel level);
LogLevel MinLogLevel();

/// True iff a record at `level` would currently be emitted.
inline bool LogEnabled(LogLevel level) { return level >= MinLogLevel(); }

/// Master switch for the stderr sink (the ring buffer stays on). disc_cli
/// turns this off under `--quiet`; tests use it to keep output clean.
void SetLogToStderr(bool enabled);

/// Replaces the output sink with `sink` (called with one complete JSON line,
/// no trailing newline). Null restores the default stderr sink. The ring
/// buffer is fed either way. Not synchronized against in-flight records:
/// install sinks at startup or between quiesced phases, as tests do.
void SetLogSink(std::function<void(const std::string& json_line)> sink);

/// The most recent `max_lines` log lines (oldest first). Thread-safe.
std::vector<std::string> RecentLogs(std::size_t max_lines);

/// Number of records emitted since process start (post-filter). Cheap;
/// exposed on /statusz so scrapes can detect log churn between polls.
std::uint64_t LogLinesEmitted();

/// Capacity of the in-process ring buffer behind RecentLogs().
inline constexpr std::size_t kLogRingCapacity = 256;

/// One in-flight log record. Built on the calling thread, emitted (JSON
/// formatting + sink hand-off) by the destructor at the end of the full
/// expression — `DISC_LOG(INFO).Str("k", v) << "message";` emits once.
class LogRecord {
 public:
  LogRecord(LogLevel level, const char* file, int line);
  ~LogRecord();

  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;

  /// Structured key/value fields, appended to the JSON object after the
  /// fixed keys. Keys must not collide with "ts_ms"/"level"/"tid"/"src"/
  /// "msg" (such a collision would produce duplicate JSON keys).
  LogRecord& Str(std::string_view key, std::string_view value);
  LogRecord& Int(std::string_view key, long long value);
  LogRecord& Uint(std::string_view key, unsigned long long value);
  LogRecord& Num(std::string_view key, double value);
  LogRecord& Bool(std::string_view key, bool value);

  /// Free-text message, streamed; lands in the "msg" field.
  template <typename T>
  LogRecord& operator<<(const T& value) {
    message_ << value;
    return *this;
  }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream message_;
  /// (key, pre-rendered JSON value) pairs, in insertion order.
  std::vector<std::pair<std::string, std::string>> fields_;
};

/// `DISC_LOG(INFO) << "..."` / `DISC_LOG(WARN).Str("k", v) << "..."`.
/// The level check happens before the LogRecord is constructed, so a
/// filtered statement never evaluates its message operands.
#define DISC_LOG_LEVEL_DEBUG ::disc::LogLevel::kDebug
#define DISC_LOG_LEVEL_INFO ::disc::LogLevel::kInfo
#define DISC_LOG_LEVEL_WARN ::disc::LogLevel::kWarn
#define DISC_LOG_LEVEL_ERROR ::disc::LogLevel::kError
#define DISC_LOG(severity)                                                  \
  for (bool disc_log_emit =                                                 \
           ::disc::LogEnabled(DISC_LOG_LEVEL_##severity);                   \
       disc_log_emit; disc_log_emit = false)                                \
  ::disc::LogRecord(DISC_LOG_LEVEL_##severity, __FILE__, __LINE__)

}  // namespace disc

#endif  // DISC_COMMON_LOG_H_
