#include "common/cpu_features.h"

#include <cstdlib>
#include <string>

#include "common/log.h"

namespace disc {

namespace {

/// True when the binary carries any vector kernels at all. The CMake option
/// DISC_SIMD=OFF defines DISC_SIMD_DISABLED and pins everything to scalar;
/// non-x86 targets have no hand-written kernels yet either.
#if !defined(DISC_SIMD_DISABLED) && (defined(__x86_64__) || defined(__amd64__))
constexpr bool kSimdCompiledIn = true;
#else
constexpr bool kSimdCompiledIn = false;
#endif

SimdTier Probe() {
  if (!kSimdCompiledIn) return SimdTier::kScalar;
#if !defined(DISC_SIMD_DISABLED) && (defined(__x86_64__) || defined(__amd64__))
  // __builtin_cpu_supports folds in the OS XSAVE/ymm-state check, so a
  // kernel that disabled AVX state reports unsupported here — exactly what
  // dispatch needs. FMA is probed separately from AVX2: the L2 reject
  // pre-pass uses fused multiply-adds, and the two CPUID bits are distinct.
  if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
    return SimdTier::kAvx2;
  }
  // SSE2 is architecturally guaranteed on x86-64.
  return SimdTier::kSse2;
#else
  return SimdTier::kScalar;
#endif
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kSse2:
      return "sse2";
    case SimdTier::kAvx2:
      return "avx2";
  }
  return "scalar";
}

std::optional<SimdTier> ParseSimdTier(std::string_view value) {
  if (value == "off" || value == "scalar" || value == "OFF") {
    return SimdTier::kScalar;
  }
  if (value == "sse2" || value == "SSE2") return SimdTier::kSse2;
  if (value == "avx2" || value == "AVX2") return SimdTier::kAvx2;
  return std::nullopt;
}

SimdTier CompiledSimdTier() {
  return kSimdCompiledIn ? SimdTier::kAvx2 : SimdTier::kScalar;
}

SimdTier DetectedSimdTier() {
  static const SimdTier tier = Probe();
  return tier;
}

SimdTier ResolveSimdTier(const char* env_value, SimdTier detected) {
  if (env_value == nullptr) return detected;
  std::string_view value(env_value);
  if (value.empty() || value == "auto") return detected;
  std::optional<SimdTier> requested = ParseSimdTier(value);
  if (!requested.has_value()) {
    DISC_LOG(WARN)
            .Str("value", std::string(value))
            .Str("detected", SimdTierName(detected))
        << "unknown DISC_SIMD value, using auto detection";
    return detected;
  }
  // An override narrows, never widens: forcing "avx2" on a machine without
  // it must degrade to what the CPU can run, not SIGILL.
  return std::min(*requested, detected);
}

SimdTier ActiveSimdTier() {
  static const SimdTier tier =
      ResolveSimdTier(std::getenv("DISC_SIMD"), DetectedSimdTier());
  return tier;
}

}  // namespace disc
