#include "common/json_writer.h"

#include "common/stringutil.h"

namespace disc {

void JsonWriter::MaybeComma() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

void JsonWriter::Escaped(const std::string& s) {
  out_ += '"';
  for (char c : s) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\r': out_ += "\\r"; break;
      case '\t': out_ += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out_ += StrFormat("\\u%04x", c);
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::BeginObject() {
  MaybeComma();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndObject() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::BeginArray() {
  MaybeComma();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::EndArray() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::Key(const std::string& k) {
  MaybeComma();
  Escaped(k);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::String(const std::string& v) {
  MaybeComma();
  Escaped(v);
  return *this;
}

JsonWriter& JsonWriter::Number(double v) {
  MaybeComma();
  out_ += StrFormat("%.9g", v);
  return *this;
}

JsonWriter& JsonWriter::Int(long long v) {
  MaybeComma();
  out_ += StrFormat("%lld", v);
  return *this;
}

JsonWriter& JsonWriter::Uint(unsigned long long v) {
  MaybeComma();
  out_ += StrFormat("%llu", v);
  return *this;
}

JsonWriter& JsonWriter::Bool(bool v) {
  MaybeComma();
  out_ += v ? "true" : "false";
  return *this;
}

JsonWriter& JsonWriter::Raw(const std::string& json) {
  MaybeComma();
  out_ += json;
  return *this;
}

}  // namespace disc
