#include "common/tuple.h"

#include <bit>
#include <sstream>

namespace disc {

Tuple Tuple::Numeric(std::initializer_list<double> values) {
  Tuple t;
  t.values_.reserve(values.size());
  for (double v : values) t.values_.emplace_back(v);
  return t;
}

Tuple Tuple::FromDoubles(const std::vector<double>& values) {
  Tuple t;
  t.values_.reserve(values.size());
  for (double v : values) t.values_.emplace_back(v);
  return t;
}

std::vector<double> Tuple::ToDoubles() const {
  std::vector<double> out;
  out.reserve(values_.size());
  for (const Value& v : values_) {
    if (v.is_numeric()) out.push_back(v.num());
  }
  return out;
}

std::string Tuple::ToString() const {
  std::ostringstream os;
  os << '(';
  for (std::size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) os << ", ";
    os << values_[i];
  }
  os << ')';
  return os.str();
}

std::ostream& operator<<(std::ostream& os, const Tuple& tuple) {
  return os << tuple.ToString();
}

AttributeSet::AttributeSet(std::initializer_list<std::size_t> indices)
    : bits_(0) {
  for (std::size_t i : indices) insert(i);
}

AttributeSet AttributeSet::Full(std::size_t arity) {
  if (arity >= kCapacity) return AttributeSet(~std::uint64_t{0});
  return AttributeSet((std::uint64_t{1} << arity) - 1);
}

std::size_t AttributeSet::size() const {
  return static_cast<std::size_t>(std::popcount(bits_));
}

AttributeSet AttributeSet::ComplementIn(std::size_t arity) const {
  return AttributeSet(Full(arity).bits() & ~bits_);
}

std::vector<std::size_t> AttributeSet::ToIndices() const {
  std::vector<std::size_t> out;
  out.reserve(size());
  for (std::size_t i = 0; i < kCapacity; ++i) {
    if (contains(i)) out.push_back(i);
  }
  return out;
}

}  // namespace disc
