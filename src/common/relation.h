#ifndef DISC_COMMON_RELATION_H_
#define DISC_COMMON_RELATION_H_

#include <cstddef>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/tuple.h"
#include "common/value.h"

namespace disc {

/// Declaration of one attribute: a name and a value kind.
struct AttributeDef {
  std::string name;
  ValueKind kind = ValueKind::kNumeric;
};

/// A relation scheme R: an ordered list of attribute definitions.
class Schema {
 public:
  /// Constructs an empty schema.
  Schema() = default;
  /// Constructs from attribute definitions.
  explicit Schema(std::vector<AttributeDef> attributes)
      : attributes_(std::move(attributes)) {}
  /// Convenience: an all-numeric schema with names "a0".."a{m-1}".
  static Schema Numeric(std::size_t arity);
  /// Convenience: an all-numeric schema with the given names.
  static Schema NumericNamed(const std::vector<std::string>& names);
  /// Convenience: an all-string schema with the given names.
  static Schema StringNamed(const std::vector<std::string>& names);

  /// Number of attributes m.
  std::size_t arity() const { return attributes_.size(); }
  /// Attribute definition at index `i`.
  const AttributeDef& attribute(std::size_t i) const { return attributes_[i]; }
  /// The kind of attribute `i`.
  ValueKind kind(std::size_t i) const { return attributes_[i].kind; }
  /// The name of attribute `i`.
  const std::string& name(std::size_t i) const { return attributes_[i].name; }
  /// Index of the attribute with `name`, or npos if absent.
  std::size_t IndexOf(const std::string& name) const;
  /// Sentinel returned by IndexOf.
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  /// True iff every attribute is numeric.
  bool all_numeric() const;

  friend bool operator==(const Schema& a, const Schema& b);

 private:
  std::vector<AttributeDef> attributes_;
};

/// A relation instance: a schema plus a list of tuples.
///
/// Relation is the dataset container used by every subsystem (indexing,
/// constraints, saving, clustering, cleaning). It is a value type.
class Relation {
 public:
  /// Constructs an empty relation with an empty schema.
  Relation() = default;
  /// Constructs an empty relation with the given schema.
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  /// Constructs from a schema and tuples (tuples must match the arity).
  Relation(Schema schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  /// The schema.
  const Schema& schema() const { return schema_; }
  /// Number of tuples n.
  std::size_t size() const { return tuples_.size(); }
  /// Number of attributes m.
  std::size_t arity() const { return schema_.arity(); }
  /// True iff the relation has no tuples.
  bool empty() const { return tuples_.empty(); }

  /// Tuple at row `i` (unchecked).
  const Tuple& operator[](std::size_t i) const { return tuples_[i]; }
  Tuple& operator[](std::size_t i) { return tuples_[i]; }

  /// All tuples.
  const std::vector<Tuple>& tuples() const { return tuples_; }
  std::vector<Tuple>& mutable_tuples() { return tuples_; }

  /// Appends a tuple. Returns InvalidArgument if the arity mismatches.
  Status Append(Tuple tuple);
  /// Appends a tuple without arity checking (hot paths, generators).
  void AppendUnchecked(Tuple tuple) { tuples_.push_back(std::move(tuple)); }

  /// Returns the sub-relation with the given row indices, preserving order.
  Relation Select(const std::vector<std::size_t>& rows) const;

  /// Distinct values of attribute `a`, sorted. This is the attribute domain
  /// used by the exact enumeration algorithm (paper §2.3).
  std::vector<Value> Domain(std::size_t a) const;

  /// Size of the largest attribute domain (the "domain" column of Table 1).
  std::size_t MaxDomainSize() const;

  /// Per-attribute min/max over numeric attributes (strings yield {0,0}).
  struct NumericRange {
    double min = 0;
    double max = 0;
  };
  NumericRange Range(std::size_t a) const;

  std::vector<Tuple>::const_iterator begin() const { return tuples_.begin(); }
  std::vector<Tuple>::const_iterator end() const { return tuples_.end(); }

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace disc

#endif  // DISC_COMMON_RELATION_H_
