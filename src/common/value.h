#ifndef DISC_COMMON_VALUE_H_
#define DISC_COMMON_VALUE_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <variant>

namespace disc {

/// The kind of a Value / attribute.
enum class ValueKind : std::uint8_t {
  kNumeric = 0,  ///< Stored as double (absolute-difference metric).
  kString = 1,   ///< Stored as std::string (edit-distance metric).
};

/// A single attribute value: either a numeric (double) or a string.
///
/// Value is the atom the whole library operates on. Tuples are vectors of
/// Values; distance functions dispatch on the kind. A Value is cheap to copy
/// for numerics and copies the payload for strings.
class Value {
 public:
  /// Constructs the numeric value 0.
  Value() : data_(0.0) {}
  /// Constructs a numeric value.
  explicit Value(double v) : data_(v) {}
  /// Constructs a numeric value from an integer.
  explicit Value(int v) : data_(static_cast<double>(v)) {}
  /// Constructs a string value.
  explicit Value(std::string v) : data_(std::move(v)) {}
  /// Constructs a string value from a C string.
  explicit Value(const char* v) : data_(std::string(v)) {}

  /// The kind of this value.
  ValueKind kind() const {
    return std::holds_alternative<double>(data_) ? ValueKind::kNumeric
                                                 : ValueKind::kString;
  }
  /// True iff this is a numeric value.
  bool is_numeric() const { return kind() == ValueKind::kNumeric; }
  /// True iff this is a string value.
  bool is_string() const { return kind() == ValueKind::kString; }

  /// The numeric payload; must only be called when is_numeric().
  double num() const { return std::get<double>(data_); }
  /// The string payload; must only be called when is_string().
  const std::string& str() const { return std::get<std::string>(data_); }

  /// Sets this value to a numeric.
  void set_num(double v) { data_ = v; }
  /// Sets this value to a string.
  void set_str(std::string v) { data_ = std::move(v); }

  /// Renders the value for display (numeric with minimal digits).
  std::string ToString() const;

  friend bool operator==(const Value& a, const Value& b) {
    return a.data_ == b.data_;
  }
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  /// Orders numerics before strings; within a kind uses natural order.
  /// Provided so Values can key ordered containers (attribute domains).
  friend bool operator<(const Value& a, const Value& b) {
    return a.data_ < b.data_;
  }

 private:
  std::variant<double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

}  // namespace disc

#endif  // DISC_COMMON_VALUE_H_
