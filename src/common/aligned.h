#ifndef DISC_COMMON_ALIGNED_H_
#define DISC_COMMON_ALIGNED_H_

#include <cstddef>
#include <new>
#include <vector>

namespace disc {

/// Minimal over-aligned allocator for the SIMD column buffers
/// (distance/columnar.h). std::vector<double>'s default allocator only
/// guarantees alignof(double) = 8; the vector kernels use aligned 64-byte
/// loads, so the buffer start must sit on a cache line. C++17 aligned
/// operator new/delete carry the alignment through to the matching free.
template <typename T, std::size_t Alignment>
class AlignedAllocator {
 public:
  static_assert(Alignment >= alignof(T), "alignment below the type's own");
  static_assert((Alignment & (Alignment - 1)) == 0,
                "alignment must be a power of two");

  using value_type = T;

  AlignedAllocator() = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Alignment>&) {}

  T* allocate(std::size_t n) {
    return static_cast<T*>(
        ::operator new(n * sizeof(T), std::align_val_t{Alignment}));
  }
  void deallocate(T* p, std::size_t) {
    ::operator delete(p, std::align_val_t{Alignment});
  }

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Alignment>;
  };

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) {
    return true;
  }
};

/// Cache-line / AVX-512-width alignment of the columnar data buffers. Also
/// the lane-pad unit: columns are padded to a multiple of this many doubles
/// so every column starts a fresh 64-byte line (distance/columnar.h).
inline constexpr std::size_t kColumnAlignBytes = 64;

/// A contiguous buffer whose data() is 64-byte aligned.
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T, kColumnAlignBytes>>;

}  // namespace disc

#endif  // DISC_COMMON_ALIGNED_H_
