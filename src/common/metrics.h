#ifndef DISC_COMMON_METRICS_H_
#define DISC_COMMON_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace disc {

/// Process-wide metrics for the save pipeline (DESIGN.md §8).
///
/// Design goals, in order:
///  1. Zero observable overhead when nothing is attached. Instrumented code
///     resolves `Counter*` handles once (at registry attach / object
///     construction) and guards every increment with a null check; the
///     per-search hot loops batch into a plain SearchStats struct and flush
///     into the registry once per search, so no atomic is touched per node.
///  2. TSan-clean under any thread count. Every mutation is a relaxed
///     fetch_add on the caller's cache-line-padded shard; snapshot reads use
///     acquire loads so a snapshot taken after a synchronization point (pool
///     join, future.get) observes every increment that happened before it.
///  3. Deterministic snapshots. Shards are summed in fixed order and metrics
///     are stored name-sorted, so two snapshots of identical work render
///     byte-identical JSON / Prometheus text.
///
/// Naming scheme: `disc_<subsystem>_<what>_<unit>`, lower_snake, counters
/// suffixed `_total`, histograms named after their unit (`_seconds`).

/// Monotonic counter, sharded per thread to keep concurrent Add() calls off
/// each other's cache lines. Add() is wait-free (one relaxed fetch_add).
class Counter {
 public:
  explicit Counter(std::string name) : name_(std::move(name)) {}

  /// Records `n` events. Thread-safe; relaxed ordering (see merge note on
  /// Value()).
  void Add(std::uint64_t n = 1) {
    shards_[ShardIndex()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all shards, read with acquire loads: any Add() that
  /// happened-before this call (program order on one thread, or a
  /// synchronization edge such as a thread join / future.get across threads)
  /// is included. Concurrent Add()s may or may not be — a live counter is a
  /// monotone lower bound, exact once writers have synchronized.
  std::uint64_t Value() const {
    std::uint64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_acquire);
    }
    return total;
  }

  const std::string& name() const { return name_; }

 private:
  friend class MetricsRegistry;
  /// Shard count: enough to spread a typical thread pool, small enough that
  /// snapshot sums stay trivial.
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> value{0};
  };
  static std::size_t ShardIndex();

  std::string name_;
  std::array<Shard, kShards> shards_;
};

/// Last-write-wins signed gauge (e.g. current queue depth, config values).
class Gauge {
 public:
  explicit Gauge(std::string name) : name_(std::move(name)) {}

  void Set(std::int64_t v) { value_.store(v, std::memory_order_release); }
  void Add(std::int64_t n) { value_.fetch_add(n, std::memory_order_relaxed); }
  std::int64_t Value() const { return value_.load(std::memory_order_acquire); }
  const std::string& name() const { return name_; }

 private:
  std::string name_;
  std::atomic<std::int64_t> value_{0};
};

/// Fixed-bucket histogram (cumulative, Prometheus-style `le` semantics).
/// Bucket bounds are set at registration and immutable afterwards; Observe()
/// is two relaxed fetch_adds plus a CAS loop for the running sum.
class Histogram {
 public:
  Histogram(std::string name, std::vector<double> bucket_bounds);

  /// Records one observation. Thread-safe.
  void Observe(double value);

  /// A representative observation remembered per bucket: the trace id links
  /// a histogram bucket back to the span tree that produced one of its
  /// observations (OpenMetrics-style exemplars, JSON exposition only).
  struct Exemplar {
    double value = 0;
    std::uint64_t trace_id = 0;  ///< 0 = no exemplar recorded
  };

  /// Observe() plus exemplar capture: remembers (value, trace_id) as the
  /// exemplar of the bucket the observation lands in (last write wins).
  /// Takes a mutex — meant for batch-flush call sites, not hot loops. A
  /// zero trace_id records the observation but no exemplar.
  void ObserveWithExemplar(double value, std::uint64_t trace_id);

  /// Merged view of one histogram (deterministic shard order).
  struct Snapshot {
    std::uint64_t count = 0;
    double sum = 0;
    /// counts[i] = observations <= bounds[i]; one final implicit +Inf
    /// bucket holds the remainder (count - counts.back()).
    std::vector<double> bounds;
    std::vector<std::uint64_t> counts;  ///< cumulative, same size as bounds
    /// Per-bucket exemplars, bounds.size() + 1 entries (last = +Inf);
    /// trace_id 0 marks an empty slot.
    std::vector<Exemplar> exemplars;
  };
  Snapshot Snap() const;

  const std::string& name() const { return name_; }

 private:
  struct alignas(64) Shard {
    std::vector<std::atomic<std::uint64_t>> buckets;  ///< per-bound, non-cumulative
    std::atomic<std::uint64_t> count{0};
    std::atomic<double> sum{0};
  };
  static std::size_t ShardIndex();
  static constexpr std::size_t kShards = 8;

  std::string name_;
  std::vector<double> bounds_;  ///< ascending
  std::vector<Shard> shards_;
  mutable std::mutex exemplar_mu_;
  std::vector<Exemplar> exemplars_;  ///< bounds_.size() + 1 slots
};

/// Name-keyed registry of counters, gauges and histograms.
///
/// Get*() registers on first use and returns a stable pointer thereafter
/// (the registry must outlive every user). A name registered as one type
/// returns null when requested as another — callers treat a null handle as
/// "metric disabled", which keeps misconfiguration observable but harmless.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// `help` (optional) becomes the `# HELP` line of the Prometheus
  /// exposition; the first non-empty help text for a name wins.
  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  /// `bucket_bounds` must be ascending; used only on first registration.
  Histogram* GetHistogram(const std::string& name,
                          std::vector<double> bucket_bounds,
                          const std::string& help = "");

  /// JSON exposition: one object with name-sorted "counters", "gauges" and
  /// "histograms" sections plus a schema_version. Deterministic for
  /// identical recorded work.
  std::string ToJson() const;

  /// Prometheus text exposition (text format 0.0.4): `# HELP` (when help
  /// text was registered) and `# TYPE` lines plus samples; histogram
  /// buckets as `name_bucket{le="..."}` with the conventional
  /// `_sum`/`_count` series. Help text and label values are escaped per
  /// the text-format spec (see PromEscapeHelp / PromEscapeLabelValue).
  std::string ToPrometheusText() const;

 private:
  void RememberHelp(const std::string& name, const std::string& help);

  mutable std::mutex mu_;
  /// std::map: iteration is name-sorted, which makes snapshots
  /// deterministic without a sort at exposition time.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
  std::map<std::string, std::string> help_;  ///< name → # HELP text
};

/// Escaping rules of the Prometheus text format 0.0.4. HELP text escapes
/// backslash and newline; label values additionally escape double quotes.
/// Exposed for direct testing (tests/metrics_test.cc).
std::string PromEscapeHelp(const std::string& s);
std::string PromEscapeLabelValue(const std::string& s);

/// The process-global registry, null until attached. Instrumented
/// construction sites (neighbor indexes, the save pipeline) resolve their
/// handles from here; a null return means "metrics disabled" and every
/// recording site degrades to a guarded no-op.
MetricsRegistry* GlobalMetrics();

/// Attaches (or detaches, with null) the global registry. Not synchronized
/// against concurrent queries: attach once at startup before spawning
/// workers, as disc_cli does. The registry must outlive everything built
/// while it was attached.
void AttachGlobalMetrics(MetricsRegistry* registry);

/// Per-implementation neighbor-index query counters, resolved from the
/// global registry at index construction. All handles stay null (and every
/// record site a guarded no-op) when no registry is attached — this is the
/// zero-overhead-when-disabled contract of DESIGN.md §8.
struct IndexQueryMetrics {
  Counter* range_queries = nullptr;
  Counter* count_queries = nullptr;
  Counter* knn_queries = nullptr;

  /// Handles named `disc_index_<impl>_{range,count,knn}_queries_total`, or
  /// all-null when no global registry is attached.
  static IndexQueryMetrics For(const char* impl);
};

}  // namespace disc

#endif  // DISC_COMMON_METRICS_H_
