#ifndef DISC_COMMON_CANCELLATION_H_
#define DISC_COMMON_CANCELLATION_H_

#include <atomic>
#include <memory>
#include <utility>

namespace disc {

/// Read side of a cooperative cancellation flag.
///
/// Tokens are cheap to copy and safe to share across threads: `cancelled()`
/// is a single relaxed-acquire atomic load. The default-constructed token
/// can never be cancelled, so APIs can take a CancellationToken
/// unconditionally and treat "not cancellable" as the zero value.
///
/// Cancellation is strictly cooperative — nothing is interrupted; long
/// computations poll `cancelled()` at safe points (see SearchBudget) and
/// wind down with whatever partial result is valid.
class CancellationToken {
 public:
  /// Constructs a token that is never cancelled.
  CancellationToken() = default;

  /// True iff cancellation has been requested on the owning source.
  bool cancelled() const {
    return flag_ != nullptr && flag_->load(std::memory_order_acquire);
  }

  /// True iff this token is connected to a CancellationSource at all.
  bool can_be_cancelled() const { return flag_ != nullptr; }

 private:
  friend class CancellationSource;
  explicit CancellationToken(std::shared_ptr<const std::atomic<bool>> flag)
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
};

/// Write side: owns the shared flag and hands out tokens.
///
/// Typical use: the batch driver keeps the source, passes `token()` into
/// every queued search, and calls `RequestCancel()` to drain-and-skip the
/// rest of the batch. RequestCancel is idempotent and may be called from
/// any thread (including a signal-like control thread) while searches run.
class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// A token observing this source.
  CancellationToken token() const { return CancellationToken(flag_); }

  /// Requests cancellation. All tokens from this source observe it on their
  /// next poll. Irrevocable.
  void RequestCancel() { flag_->store(true, std::memory_order_release); }

  /// True iff RequestCancel() has been called.
  bool cancel_requested() const {
    return flag_->load(std::memory_order_acquire);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace disc

#endif  // DISC_COMMON_CANCELLATION_H_
