#include "common/stringutil.h"

#include <cctype>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>

namespace disc {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return std::string(s.substr(b, e - b));
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string ToLower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

bool ParseDouble(std::string_view s, double* out) {
  std::string buf = Trim(s);
  if (buf.empty()) return false;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list copy;
  va_copy(copy, args);
  int needed = std::vsnprintf(nullptr, 0, fmt, copy);
  va_end(copy);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<std::size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args);
  }
  va_end(args);
  return out;
}

}  // namespace disc
