#ifndef DISC_COMMON_STATUS_H_
#define DISC_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace disc {

/// Error codes used across the library. Public APIs report failures through
/// Status / Result instead of exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kIoError,
  kDeadlineExceeded,
  kCancelled,
  kResourceExhausted,
};

/// Lightweight status object: a code plus a human-readable message.
/// An OK status carries no message and is cheap to copy.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  /// Returns an OK status.
  static Status OK() { return Status(); }
  /// Returns an InvalidArgument status with the given message.
  static Status InvalidArgument(std::string message);
  /// Returns a NotFound status with the given message.
  static Status NotFound(std::string message);
  /// Returns an OutOfRange status with the given message.
  static Status OutOfRange(std::string message);
  /// Returns a FailedPrecondition status with the given message.
  static Status FailedPrecondition(std::string message);
  /// Returns an Internal status with the given message.
  static Status Internal(std::string message);
  /// Returns an IoError status with the given message.
  static Status IoError(std::string message);
  /// Returns a DeadlineExceeded status: a wall-clock budget ran out before
  /// the operation completed (the result, if any, may be degraded).
  static Status DeadlineExceeded(std::string message);
  /// Returns a Cancelled status: the operation was cooperatively cancelled.
  static Status Cancelled(std::string message);
  /// Returns a ResourceExhausted status: a non-time budget (visited sets,
  /// index queries, candidates) was exhausted before completion.
  static Status ResourceExhausted(std::string message);

  /// True iff the status is OK.
  bool ok() const { return code_ == StatusCode::kOk; }
  /// The status code.
  StatusCode code() const { return code_; }
  /// The message (empty for OK).
  const std::string& message() const { return message_; }

  /// A short "CODE: message" rendering for logs.
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& status);

/// Result<T>: either a value or an error status. Use `ok()` before `value()`.
template <typename T>
class Result {
 public:
  /// Constructs a successful result holding `value`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Constructs a failed result from a non-OK status.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  /// True iff a value is present.
  bool ok() const { return status_.ok(); }
  /// The error status (OK when a value is present).
  const Status& status() const { return status_; }
  /// The held value; must only be called when ok().
  const T& value() const& { return value_; }
  /// Moves the held value out; must only be called when ok().
  T&& value() && { return std::move(value_); }

 private:
  Status status_;
  T value_{};
};

}  // namespace disc

#endif  // DISC_COMMON_STATUS_H_
