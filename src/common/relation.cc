#include "common/relation.h"

#include <algorithm>
#include <set>

namespace disc {

Schema Schema::Numeric(std::size_t arity) {
  std::vector<AttributeDef> defs;
  defs.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) {
    defs.push_back({"a" + std::to_string(i), ValueKind::kNumeric});
  }
  return Schema(std::move(defs));
}

Schema Schema::NumericNamed(const std::vector<std::string>& names) {
  std::vector<AttributeDef> defs;
  defs.reserve(names.size());
  for (const std::string& name : names) {
    defs.push_back({name, ValueKind::kNumeric});
  }
  return Schema(std::move(defs));
}

Schema Schema::StringNamed(const std::vector<std::string>& names) {
  std::vector<AttributeDef> defs;
  defs.reserve(names.size());
  for (const std::string& name : names) {
    defs.push_back({name, ValueKind::kString});
  }
  return Schema(std::move(defs));
}

std::size_t Schema::IndexOf(const std::string& name) const {
  for (std::size_t i = 0; i < attributes_.size(); ++i) {
    if (attributes_[i].name == name) return i;
  }
  return npos;
}

bool Schema::all_numeric() const {
  return std::all_of(attributes_.begin(), attributes_.end(),
                     [](const AttributeDef& def) {
                       return def.kind == ValueKind::kNumeric;
                     });
}

bool operator==(const Schema& a, const Schema& b) {
  if (a.attributes_.size() != b.attributes_.size()) return false;
  for (std::size_t i = 0; i < a.attributes_.size(); ++i) {
    if (a.attributes_[i].name != b.attributes_[i].name ||
        a.attributes_[i].kind != b.attributes_[i].kind) {
      return false;
    }
  }
  return true;
}

Status Relation::Append(Tuple tuple) {
  if (tuple.size() != schema_.arity()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(tuple.size()) +
        " does not match schema arity " + std::to_string(schema_.arity()));
  }
  tuples_.push_back(std::move(tuple));
  return Status::OK();
}

Relation Relation::Select(const std::vector<std::size_t>& rows) const {
  Relation out(schema_);
  out.tuples_.reserve(rows.size());
  for (std::size_t row : rows) out.tuples_.push_back(tuples_[row]);
  return out;
}

std::vector<Value> Relation::Domain(std::size_t a) const {
  std::set<Value> distinct;
  for (const Tuple& t : tuples_) distinct.insert(t[a]);
  return std::vector<Value>(distinct.begin(), distinct.end());
}

std::size_t Relation::MaxDomainSize() const {
  std::size_t best = 0;
  for (std::size_t a = 0; a < arity(); ++a) {
    best = std::max(best, Domain(a).size());
  }
  return best;
}

Relation::NumericRange Relation::Range(std::size_t a) const {
  NumericRange r;
  bool first = true;
  for (const Tuple& t : tuples_) {
    if (!t[a].is_numeric()) continue;
    double v = t[a].num();
    if (first) {
      r.min = r.max = v;
      first = false;
    } else {
      r.min = std::min(r.min, v);
      r.max = std::max(r.max, v);
    }
  }
  return r;
}

}  // namespace disc
