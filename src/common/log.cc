#include "common/log.h"

#include <algorithm>
#include <array>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <utility>

#include "common/json_writer.h"
#include "common/stringutil.h"

namespace disc {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::atomic<bool> g_log_to_stderr{true};
std::atomic<std::uint64_t> g_lines_emitted{0};

/// Sink state + ring buffer. One mutex for both: logging is a per-event
/// (not per-node) operation everywhere in this codebase, so a single short
/// critical section around the final hand-off is cheaper than lock-free
/// machinery — and it guarantees whole-line writes (no interleaving).
struct SinkState {
  std::mutex mu;
  std::function<void(const std::string&)> sink;  ///< null = stderr
  std::array<std::string, kLogRingCapacity> ring;
  std::size_t ring_next = 0;   ///< next slot to overwrite
  std::size_t ring_count = 0;  ///< lines stored, saturates at capacity
};

SinkState& Sinks() {
  static SinkState* state = new SinkState();  // leaked: usable at exit
  return *state;
}

/// Small stable per-thread id for log correlation: dense 1,2,3,... in
/// first-log order, far more readable than a hashed std::thread::id.
std::uint64_t ThisThreadLogId() {
  static std::atomic<std::uint64_t> next{1};
  static thread_local const std::uint64_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

/// Strips the directory part: logs carry "datasets.cc:276", not the
/// build-machine absolute path.
std::string_view Basename(const char* file) {
  std::string_view path(file);
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string_view::npos ? path : path.substr(slash + 1);
}

void EmitLine(std::string line) {
  g_lines_emitted.fetch_add(1, std::memory_order_relaxed);
  SinkState& s = Sinks();
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.sink) {
    s.sink(line);
  } else if (g_log_to_stderr.load(std::memory_order_relaxed)) {
    std::fputs(line.c_str(), stderr);
    std::fputc('\n', stderr);
  }
  s.ring[s.ring_next] = std::move(line);
  s.ring_next = (s.ring_next + 1) % kLogRingCapacity;
  if (s.ring_count < kLogRingCapacity) ++s.ring_count;
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "unknown";
}

bool ParseLogLevel(std::string_view name, LogLevel* out) {
  const std::string lower = ToLower(name);
  if (lower == "debug") {
    *out = LogLevel::kDebug;
  } else if (lower == "info") {
    *out = LogLevel::kInfo;
  } else if (lower == "warn" || lower == "warning") {
    *out = LogLevel::kWarn;
  } else if (lower == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

void SetMinLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel MinLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

void SetLogToStderr(bool enabled) {
  g_log_to_stderr.store(enabled, std::memory_order_relaxed);
}

void SetLogSink(std::function<void(const std::string&)> sink) {
  SinkState& s = Sinks();
  std::lock_guard<std::mutex> lock(s.mu);
  s.sink = std::move(sink);
}

std::vector<std::string> RecentLogs(std::size_t max_lines) {
  SinkState& s = Sinks();
  std::lock_guard<std::mutex> lock(s.mu);
  const std::size_t n = std::min(max_lines, s.ring_count);
  std::vector<std::string> out;
  out.reserve(n);
  // Oldest-first among the newest n: walk backwards from the write cursor.
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t slot =
        (s.ring_next + kLogRingCapacity - n + i) % kLogRingCapacity;
    out.push_back(s.ring[slot]);
  }
  return out;
}

std::uint64_t LogLinesEmitted() {
  return g_lines_emitted.load(std::memory_order_relaxed);
}

LogRecord::LogRecord(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogRecord& LogRecord::Str(std::string_view key, std::string_view value) {
  JsonWriter json;
  json.String(std::string(value));
  fields_.emplace_back(std::string(key), json.str());
  return *this;
}

LogRecord& LogRecord::Int(std::string_view key, long long value) {
  fields_.emplace_back(std::string(key), StrFormat("%lld", value));
  return *this;
}

LogRecord& LogRecord::Uint(std::string_view key, unsigned long long value) {
  fields_.emplace_back(std::string(key), StrFormat("%llu", value));
  return *this;
}

LogRecord& LogRecord::Num(std::string_view key, double value) {
  JsonWriter json;
  json.Number(value);
  fields_.emplace_back(std::string(key), json.str());
  return *this;
}

LogRecord& LogRecord::Bool(std::string_view key, bool value) {
  fields_.emplace_back(std::string(key), value ? "true" : "false");
  return *this;
}

LogRecord::~LogRecord() {
  const auto now_ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::system_clock::now().time_since_epoch())
          .count();
  JsonWriter json;
  json.BeginObject();
  json.Key("ts_ms").Int(static_cast<long long>(now_ms));
  json.Key("level").String(LogLevelName(level_));
  json.Key("tid").Uint(ThisThreadLogId());
  json.Key("src").String(std::string(Basename(file_)) + ":" +
                         std::to_string(line_));
  json.Key("msg").String(message_.str());
  json.EndObject();
  std::string line = json.str();
  // Splice the pre-rendered fields before the closing brace — JsonWriter
  // has already validated each value, and keys go through its escaping.
  line.pop_back();  // '}'
  for (const auto& [key, value] : fields_) {
    JsonWriter key_json;
    key_json.String(std::string(key));
    line += ',';
    line += key_json.str();
    line += ':';
    line += value;
  }
  line += '}';
  EmitLine(std::move(line));
}

}  // namespace disc
