#include "common/metrics.h"

#include <algorithm>
#include <functional>
#include <thread>

#include "common/cpu_features.h"
#include "common/json_writer.h"
#include "common/stringutil.h"

namespace disc {

namespace {

std::atomic<MetricsRegistry*> g_global_metrics{nullptr};

/// One shard pick per thread, computed once: hashing std::this_thread::get_id
/// on every Add() would dominate the fetch_add itself.
std::size_t ThisThreadShard(std::size_t shard_count) {
  static thread_local const std::size_t hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return hash % shard_count;
}

/// Formats a double the way the Prometheus text format expects (`+Inf` for
/// the unbounded bucket, shortest round-trip otherwise is overkill — %g is
/// what common client libraries emit).
std::string PromDouble(double v) { return StrFormat("%g", v); }

}  // namespace

std::string PromEscapeHelp(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::string PromEscapeLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '"': out += "\\\""; break;
      case '\n': out += "\\n"; break;
      default: out += c;
    }
  }
  return out;
}

std::size_t Counter::ShardIndex() { return ThisThreadShard(kShards); }

Histogram::Histogram(std::string name, std::vector<double> bucket_bounds)
    : name_(std::move(name)), bounds_(std::move(bucket_bounds)),
      shards_(kShards) {
  std::sort(bounds_.begin(), bounds_.end());
  for (Shard& s : shards_) {
    s.buckets = std::vector<std::atomic<std::uint64_t>>(bounds_.size());
  }
  exemplars_.resize(bounds_.size() + 1);  // trailing slot = +Inf bucket
}

std::size_t Histogram::ShardIndex() { return ThisThreadShard(kShards); }

void Histogram::Observe(double value) {
  Shard& shard = shards_[ShardIndex()];
  // First bound >= value; observations beyond the last bound land only in
  // the implicit +Inf bucket (count minus the cumulative last bound).
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  if (it != bounds_.end()) {
    std::size_t b = static_cast<std::size_t>(it - bounds_.begin());
    shard.buckets[b].fetch_add(1, std::memory_order_relaxed);
  }
  shard.count.fetch_add(1, std::memory_order_relaxed);
  double expected = shard.sum.load(std::memory_order_relaxed);
  while (!shard.sum.compare_exchange_weak(expected, expected + value,
                                          std::memory_order_relaxed)) {
  }
}

void Histogram::ObserveWithExemplar(double value, std::uint64_t trace_id) {
  Observe(value);
  if (trace_id == 0) return;
  auto it = std::lower_bound(bounds_.begin(), bounds_.end(), value);
  const std::size_t slot = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard<std::mutex> lock(exemplar_mu_);
  exemplars_[slot] = Exemplar{value, trace_id};
}

Histogram::Snapshot Histogram::Snap() const {
  Snapshot snap;
  snap.bounds = bounds_;
  snap.counts.assign(bounds_.size(), 0);
  {
    std::lock_guard<std::mutex> lock(exemplar_mu_);
    snap.exemplars = exemplars_;
  }
  for (const Shard& s : shards_) {
    for (std::size_t b = 0; b < bounds_.size(); ++b) {
      snap.counts[b] += s.buckets[b].load(std::memory_order_acquire);
    }
    snap.count += s.count.load(std::memory_order_acquire);
    snap.sum += s.sum.load(std::memory_order_acquire);
  }
  // Convert per-bucket tallies into cumulative `le` counts.
  for (std::size_t b = 1; b < snap.counts.size(); ++b) {
    snap.counts[b] += snap.counts[b - 1];
  }
  return snap;
}

void MetricsRegistry::RememberHelp(const std::string& name,
                                   const std::string& help) {
  if (!help.empty() && help_.count(name) == 0) help_[name] = help;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (gauges_.count(name) != 0 || histograms_.count(name) != 0) return nullptr;
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(name, std::make_unique<Counter>(name)).first;
  }
  RememberHelp(name, help);
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || histograms_.count(name) != 0) {
    return nullptr;
  }
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(name, std::make_unique<Gauge>(name)).first;
  }
  RememberHelp(name, help);
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name,
                                         std::vector<double> bucket_bounds,
                                         const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  if (counters_.count(name) != 0 || gauges_.count(name) != 0) return nullptr;
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(name, std::make_unique<Histogram>(
                                name, std::move(bucket_bounds)))
             .first;
  }
  RememberHelp(name, help);
  return it->second.get();
}

std::string MetricsRegistry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(1);
  json.Key("counters").BeginObject();
  for (const auto& [name, counter] : counters_) {
    json.Key(name).Uint(counter->Value());
  }
  json.EndObject();
  json.Key("gauges").BeginObject();
  for (const auto& [name, gauge] : gauges_) {
    json.Key(name).Int(gauge->Value());
  }
  json.EndObject();
  json.Key("histograms").BeginObject();
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->Snap();
    json.Key(name).BeginObject();
    json.Key("count").Uint(snap.count);
    json.Key("sum").Number(snap.sum);
    json.Key("buckets").BeginArray();
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      json.BeginObject();
      json.Key("le").Number(snap.bounds[b]);
      json.Key("count").Uint(snap.counts[b]);
      json.EndObject();
    }
    json.EndArray();
    bool any_exemplar = false;
    for (const Histogram::Exemplar& e : snap.exemplars) {
      if (e.trace_id != 0) any_exemplar = true;
    }
    if (any_exemplar) {
      // One representative observation per populated bucket, linking the
      // bucket back to the trace id of a span tree that landed in it. The
      // trailing slot is the implicit +Inf bucket.
      json.Key("exemplars").BeginArray();
      for (std::size_t b = 0; b < snap.exemplars.size(); ++b) {
        const Histogram::Exemplar& e = snap.exemplars[b];
        if (e.trace_id == 0) continue;
        json.BeginObject();
        if (b < snap.bounds.size()) {
          json.Key("le").Number(snap.bounds[b]);
        } else {
          json.Key("le").String("+Inf");
        }
        json.Key("value").Number(e.value);
        json.Key("trace_id").Uint(e.trace_id);
        json.EndObject();
      }
      json.EndArray();
    }
    json.EndObject();
  }
  json.EndObject();
  json.EndObject();
  return json.str();
}

std::string MetricsRegistry::ToPrometheusText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  // A name may carry a label suffix (`disc_http_requests_total{path="/x"}`);
  // the metric family is the part before the brace, and HELP/TYPE lines are
  // emitted once per family (labeled variants sort adjacent in the map).
  const auto base_of = [](const std::string& name) {
    const std::size_t brace = name.find('{');
    return brace == std::string::npos ? name : name.substr(0, brace);
  };
  const auto help_line = [this, &out](const std::string& base,
                                      const std::string& name) {
    auto it = help_.find(base);
    if (it == help_.end()) it = help_.find(name);
    if (it != help_.end()) {
      out += "# HELP " + base + " " + PromEscapeHelp(it->second) + "\n";
    }
  };
  std::string last_base;
  for (const auto& [name, counter] : counters_) {
    const std::string base = base_of(name);
    if (base != last_base) {
      help_line(base, name);
      out += "# TYPE " + base + " counter\n";
      last_base = base;
    }
    out += name + " " + StrFormat("%llu",
                                  static_cast<unsigned long long>(
                                      counter->Value())) +
           "\n";
  }
  for (const auto& [name, gauge] : gauges_) {
    help_line(name, name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " +
           StrFormat("%lld", static_cast<long long>(gauge->Value())) + "\n";
  }
  for (const auto& [name, histogram] : histograms_) {
    Histogram::Snapshot snap = histogram->Snap();
    help_line(name, name);
    out += "# TYPE " + name + " histogram\n";
    for (std::size_t b = 0; b < snap.bounds.size(); ++b) {
      out += name + "_bucket{le=\"" +
             PromEscapeLabelValue(PromDouble(snap.bounds[b])) + "\"} " +
             StrFormat("%llu",
                       static_cast<unsigned long long>(snap.counts[b])) +
             "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " +
           StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
           "\n";
    out += name + "_sum " + StrFormat("%.9g", snap.sum) + "\n";
    out += name + "_count " +
           StrFormat("%llu", static_cast<unsigned long long>(snap.count)) +
           "\n";
  }
  return out;
}

MetricsRegistry* GlobalMetrics() {
  return g_global_metrics.load(std::memory_order_acquire);
}

void AttachGlobalMetrics(MetricsRegistry* registry) {
  g_global_metrics.store(registry, std::memory_order_release);
  if (registry != nullptr) {
    // The dispatch tier is process-wide and latched, so export it once at
    // attach time: 0 = scalar, 1 = sse2, 2 = avx2 (common/cpu_features.h).
    registry
        ->GetGauge("disc_simd_tier",
                   "Active SIMD dispatch tier of the distance kernels "
                   "(0=scalar, 1=sse2, 2=avx2)")
        ->Set(static_cast<std::int64_t>(ActiveSimdTier()));
  }
}

IndexQueryMetrics IndexQueryMetrics::For(const char* impl) {
  IndexQueryMetrics metrics;
  MetricsRegistry* registry = GlobalMetrics();
  if (registry == nullptr) return metrics;
  const std::string prefix = std::string("disc_index_") + impl + "_";
  metrics.range_queries = registry->GetCounter(prefix + "range_queries_total");
  metrics.count_queries = registry->GetCounter(prefix + "count_queries_total");
  metrics.knn_queries = registry->GetCounter(prefix + "knn_queries_total");
  return metrics;
}

}  // namespace disc
