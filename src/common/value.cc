#include "common/value.h"

#include <cmath>
#include <cstdio>

namespace disc {

std::string Value::ToString() const {
  if (is_string()) return str();
  double v = num();
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%g", v);
  return buf;
}

std::ostream& operator<<(std::ostream& os, const Value& value) {
  return os << value.ToString();
}

}  // namespace disc
