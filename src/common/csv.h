#ifndef DISC_COMMON_CSV_H_
#define DISC_COMMON_CSV_H_

#include <string>

#include "common/relation.h"
#include "common/status.h"

namespace disc {

/// Options controlling CSV reading.
struct CsvOptions {
  char separator = ',';
  bool has_header = true;
  /// When true, columns whose every value parses as a double become numeric
  /// attributes; otherwise they become string attributes.
  bool infer_kinds = true;
  /// Hard cap on the input size in bytes (0 = unlimited). An oversized
  /// file or text is rejected up front with InvalidArgument instead of
  /// being slurped into memory.
  std::size_t max_bytes = 0;
  /// When true (and `infer_kinds` is on), a column where some but not all
  /// cells parse as doubles is an InvalidArgument naming the first
  /// offending cell (line, column, content) instead of silently becoming a
  /// string column — catches truncated or corrupted numeric data that
  /// would otherwise flip an entire column's type.
  bool strict_numeric = false;
};

/// Reads a relation from a CSV file. Column kinds are inferred unless
/// `options.infer_kinds` is false (then every column is a string).
Result<Relation> ReadCsv(const std::string& path, const CsvOptions& options = {});

/// Parses a relation from CSV text (same semantics as ReadCsv).
Result<Relation> ParseCsv(const std::string& text, const CsvOptions& options = {});

/// Writes a relation to a CSV file with a header row.
Status WriteCsv(const Relation& relation, const std::string& path,
                char separator = ',');

/// Serializes a relation to CSV text with a header row.
std::string ToCsv(const Relation& relation, char separator = ',');

}  // namespace disc

#endif  // DISC_COMMON_CSV_H_
