#include "common/csv.h"

#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/stringutil.h"

namespace disc {

namespace {

/// One non-blank input row plus its 1-based physical line number, so
/// malformed-input errors can point at the actual line in the file (blank
/// lines are skipped, so the row index alone would be off).
struct CsvRow {
  std::size_t line = 0;
  std::vector<std::string> cells;
};

std::vector<CsvRow> SplitRows(const std::string& text, char sep) {
  std::vector<CsvRow> rows;
  std::istringstream in(text);
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    rows.push_back(CsvRow{lineno, Split(line, sep)});
  }
  return rows;
}

}  // namespace

Result<Relation> ParseCsv(const std::string& text, const CsvOptions& options) {
  if (options.max_bytes > 0 && text.size() > options.max_bytes) {
    return Status::InvalidArgument(
        StrFormat("CSV input is %zu bytes, over the %zu-byte limit",
                  text.size(), options.max_bytes));
  }
  std::vector<CsvRow> rows = SplitRows(text, options.separator);
  if (rows.empty()) {
    return Status::InvalidArgument("CSV input has no rows");
  }

  std::vector<std::string> names;
  std::size_t first_data = 0;
  if (options.has_header) {
    for (const std::string& cell : rows[0].cells) names.push_back(Trim(cell));
    first_data = 1;
  } else {
    for (std::size_t i = 0; i < rows[0].cells.size(); ++i) {
      names.push_back("a" + std::to_string(i));
    }
  }
  const std::size_t arity = names.size();

  for (std::size_t row = first_data; row < rows.size(); ++row) {
    if (rows[row].cells.size() != arity) {
      return Status::InvalidArgument(StrFormat(
          "CSV line %zu has %zu fields, expected %zu (the %s width)",
          rows[row].line, rows[row].cells.size(), arity,
          options.has_header ? "header" : "first row"));
    }
  }

  // Infer kinds: a column is numeric iff every cell parses as a double.
  std::vector<ValueKind> kinds(arity, ValueKind::kString);
  if (options.infer_kinds) {
    for (std::size_t col = 0; col < arity; ++col) {
      std::size_t numeric_cells = 0;
      std::size_t first_bad = rows.size();  // rows index of first bad cell
      for (std::size_t row = first_data; row < rows.size(); ++row) {
        double unused;
        if (ParseDouble(rows[row].cells[col], &unused)) {
          ++numeric_cells;
        } else if (first_bad == rows.size()) {
          first_bad = row;
        }
      }
      const bool numeric =
          rows.size() > first_data && first_bad == rows.size();
      // A mixed column (some numeric cells, some not) is the signature of
      // corrupted numeric data; in strict mode name the offending cell
      // rather than silently demoting the column to strings.
      if (options.strict_numeric && !numeric && numeric_cells > 0) {
        return Status::InvalidArgument(StrFormat(
            "CSV column \"%s\" (index %zu): non-numeric cell \"%s\" on "
            "line %zu of an otherwise numeric column",
            names[col].c_str(), col,
            rows[first_bad].cells[col].c_str(), rows[first_bad].line));
      }
      kinds[col] = numeric ? ValueKind::kNumeric : ValueKind::kString;
    }
  }

  std::vector<AttributeDef> defs;
  defs.reserve(arity);
  for (std::size_t col = 0; col < arity; ++col) {
    defs.push_back({names[col], kinds[col]});
  }
  Relation relation{Schema(std::move(defs))};

  for (std::size_t row = first_data; row < rows.size(); ++row) {
    Tuple t;
    for (std::size_t col = 0; col < arity; ++col) {
      if (kinds[col] == ValueKind::kNumeric) {
        double v = 0;
        ParseDouble(rows[row].cells[col], &v);
        t.push_back(Value(v));
      } else {
        t.push_back(Value(Trim(rows[row].cells[col])));
      }
    }
    relation.AppendUnchecked(std::move(t));
  }
  return relation;
}

Result<Relation> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  if (options.max_bytes > 0) {
    // Reject oversized files before slurping them into memory.
    in.seekg(0, std::ios::end);
    const auto size = in.tellg();
    if (size >= 0 &&
        static_cast<std::uint64_t>(size) > options.max_bytes) {
      return Status::InvalidArgument(StrFormat(
          "%s is %llu bytes, over the %zu-byte CSV limit", path.c_str(),
          static_cast<unsigned long long>(size), options.max_bytes));
    }
    in.seekg(0);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Relation& relation, char separator) {
  std::ostringstream out;
  const Schema& schema = relation.schema();
  for (std::size_t col = 0; col < schema.arity(); ++col) {
    if (col > 0) out << separator;
    out << schema.name(col);
  }
  out << '\n';
  for (const Tuple& t : relation) {
    for (std::size_t col = 0; col < t.size(); ++col) {
      if (col > 0) out << separator;
      out << t[col].ToString();
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsv(const Relation& relation, const std::string& path,
                char separator) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << ToCsv(relation, separator);
  return out ? Status::OK() : Status::IoError("write failed for " + path);
}

}  // namespace disc
