#include "common/csv.h"

#include <fstream>
#include <sstream>

#include "common/stringutil.h"

namespace disc {

namespace {

std::vector<std::vector<std::string>> SplitRows(const std::string& text,
                                                char sep) {
  std::vector<std::vector<std::string>> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (Trim(line).empty()) continue;
    rows.push_back(Split(line, sep));
  }
  return rows;
}

}  // namespace

Result<Relation> ParseCsv(const std::string& text, const CsvOptions& options) {
  std::vector<std::vector<std::string>> rows = SplitRows(text, options.separator);
  if (rows.empty()) {
    return Status::InvalidArgument("CSV input has no rows");
  }

  std::vector<std::string> names;
  std::size_t first_data = 0;
  if (options.has_header) {
    for (const std::string& cell : rows[0]) names.push_back(Trim(cell));
    first_data = 1;
  } else {
    for (std::size_t i = 0; i < rows[0].size(); ++i) {
      names.push_back("a" + std::to_string(i));
    }
  }
  const std::size_t arity = names.size();

  for (std::size_t row = first_data; row < rows.size(); ++row) {
    if (rows[row].size() != arity) {
      return Status::InvalidArgument(
          StrFormat("CSV row %zu has %zu fields, expected %zu", row,
                    rows[row].size(), arity));
    }
  }

  // Infer kinds: a column is numeric iff every cell parses as a double.
  std::vector<ValueKind> kinds(arity, ValueKind::kString);
  if (options.infer_kinds) {
    for (std::size_t col = 0; col < arity; ++col) {
      bool numeric = rows.size() > first_data;
      for (std::size_t row = first_data; row < rows.size() && numeric; ++row) {
        double unused;
        numeric = ParseDouble(rows[row][col], &unused);
      }
      kinds[col] = numeric ? ValueKind::kNumeric : ValueKind::kString;
    }
  }

  std::vector<AttributeDef> defs;
  defs.reserve(arity);
  for (std::size_t col = 0; col < arity; ++col) {
    defs.push_back({names[col], kinds[col]});
  }
  Relation relation{Schema(std::move(defs))};

  for (std::size_t row = first_data; row < rows.size(); ++row) {
    Tuple t;
    for (std::size_t col = 0; col < arity; ++col) {
      if (kinds[col] == ValueKind::kNumeric) {
        double v = 0;
        ParseDouble(rows[row][col], &v);
        t.push_back(Value(v));
      } else {
        t.push_back(Value(Trim(rows[row][col])));
      }
    }
    relation.AppendUnchecked(std::move(t));
  }
  return relation;
}

Result<Relation> ReadCsv(const std::string& path, const CsvOptions& options) {
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return ParseCsv(buffer.str(), options);
}

std::string ToCsv(const Relation& relation, char separator) {
  std::ostringstream out;
  const Schema& schema = relation.schema();
  for (std::size_t col = 0; col < schema.arity(); ++col) {
    if (col > 0) out << separator;
    out << schema.name(col);
  }
  out << '\n';
  for (const Tuple& t : relation) {
    for (std::size_t col = 0; col < t.size(); ++col) {
      if (col > 0) out << separator;
      out << t[col].ToString();
    }
    out << '\n';
  }
  return out.str();
}

Status WriteCsv(const Relation& relation, const std::string& path,
                char separator) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open " + path + " for writing");
  }
  out << ToCsv(relation, separator);
  return out ? Status::OK() : Status::IoError("write failed for " + path);
}

}  // namespace disc
