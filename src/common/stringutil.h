#ifndef DISC_COMMON_STRINGUTIL_H_
#define DISC_COMMON_STRINGUTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace disc {

/// Splits `s` on `sep`, keeping empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string Trim(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, const std::string& sep);

/// Lower-cases ASCII letters.
std::string ToLower(std::string_view s);

/// True iff `s` parses fully as a floating-point number.
bool ParseDouble(std::string_view s, double* out);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace disc

#endif  // DISC_COMMON_STRINGUTIL_H_
