#ifndef DISC_COMMON_FAULT_H_
#define DISC_COMMON_FAULT_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "common/cancellation.h"
#include "common/status.h"

namespace disc {

/// Deterministic fault injection (DESIGN.md §11).
///
/// Code under test declares named *fault sites* — stable string identifiers
/// at the seams where real systems fail (index build, cache fill, task
/// dispatch, socket reads). A test or the CLI attaches a FaultInjector armed
/// with FaultSpecs; each spec selects a site, a trigger (nth hit, periodic,
/// explicit schedule, or seeded probability) and a fault kind. With no
/// injector attached every site is a single null-pointer check, mirroring
/// the IndexQueryMetrics zero-overhead-when-disabled pattern.
///
/// Determinism: triggers depend only on the per-site hit index and the
/// injector seed, never on wall clock or global RNG state, so a given
/// (seed, specs, workload) tuple fires the same faults on every run as long
/// as the per-site hit order is itself deterministic (true for all
/// single-threaded sites; for concurrent sites such as `pool.task`, hit
/// indices are assigned by atomic increment and nth-hit triggers still fire
/// exactly once, on *some* task).

/// What happens when a fault fires.
enum class FaultKind {
  /// Site returns a non-OK Status carrying FaultSpec::code.
  kError,
  /// Site sleeps for FaultSpec::latency_ms, then returns OK.
  kLatency,
  /// Trips the injector's CancellationSource (see FaultInjector::token());
  /// the site itself returns OK and cancellation propagates cooperatively.
  kCancel,
  /// Site returns kResourceExhausted, simulating an allocation failure
  /// surfaced as a Status (the library never throws bad_alloc across API
  /// boundaries).
  kAllocFail,
  /// Site throws FaultInjectedError, simulating an abrupt crash that
  /// unwinds without running any of the caller's completion logic.
  kKill,
};

/// Short lower-case name for a fault kind ("error", "latency", ...).
const char* FaultKindName(FaultKind kind);

/// Thrown by FaultKind::kKill to simulate a process crash at a fault site.
/// Nothing in the library catches it, so it unwinds to the test harness
/// (or, under WorkStealingPool::RunBatch, is rethrown after the batch
/// drains) exactly like an unexpected hard failure would.
class FaultInjectedError : public std::runtime_error {
 public:
  explicit FaultInjectedError(const std::string& what)
      : std::runtime_error(what) {}
};

/// One armed fault: a site, a trigger, and a kind.
///
/// Trigger evaluation for per-site hit index `h` (0-based), first match
/// wins across the spec's trigger forms:
///   - `schedule` non-empty: fires when `h` is in the list;
///   - `probability` > 0: fires on a seeded per-hit Bernoulli draw;
///   - otherwise: fires at `h == nth`, and every `every` hits after that
///     when `every` > 0.
/// `max_fires` caps the total fires of this spec across all triggers.
struct FaultSpec {
  std::string site;
  FaultKind kind = FaultKind::kError;

  std::uint64_t nth = 0;
  std::uint64_t every = 0;
  double probability = 0.0;
  std::vector<std::uint64_t> schedule;
  std::uint64_t max_fires = std::numeric_limits<std::uint64_t>::max();

  /// Status code returned by kError fires.
  StatusCode code = StatusCode::kInternal;
  /// Sleep applied by kLatency fires.
  std::uint32_t latency_ms = 0;
};

/// Parses a `--fault-spec` string into FaultSpecs.
///
/// Grammar: specs separated by ';', each `site:kind[:key=value[,...]]`.
/// Kinds: error, latency, cancel, alloc, kill. Keys: nth, every, p
/// (probability), max (max_fires), ms (latency_ms), code (error code name,
/// e.g. resource_exhausted), at (explicit schedule, '+'-separated hit
/// indices, e.g. at=3+9+12).
///
/// Example: "search.node:cancel:nth=100;dcache.fill:latency:ms=5,every=10"
Result<std::vector<FaultSpec>> ParseFaultSpecs(std::string_view text);

/// Seeded registry of fault sites. Configure with Add()/AddFromString()
/// *before* sharing with other threads (attaching via
/// AttachGlobalFaultInjector is a sufficient synchronization point); Hit()
/// is then safe to call concurrently from any thread.
class FaultInjector {
 public:
  /// Per-site state. Obtain via FaultInjector::site() once (e.g. at gauge
  /// or server construction) and call Hit() on the hot path; a site with no
  /// armed specs only bumps a relaxed counter.
  class Site {
   public:
    /// Records one hit and applies the first firing spec, if any. Returns
    /// OK when nothing fires (or the fault kind is latency/cancel); throws
    /// FaultInjectedError for kKill.
    Status Hit();

    /// Total hits recorded at this site.
    std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
    /// Total fires (any kind) at this site.
    std::uint64_t fires() const {
      return fires_.load(std::memory_order_relaxed);
    }

   private:
    friend class FaultInjector;
    struct Rule {
      FaultSpec spec;
      std::atomic<std::uint64_t> fires{0};
    };

    Site(FaultInjector* owner, std::string name);

    FaultInjector* owner_;
    std::string name_;
    std::uint64_t name_hash_;
    std::vector<std::unique_ptr<Rule>> rules_;
    std::atomic<std::uint64_t> hits_{0};
    std::atomic<std::uint64_t> fires_{0};
  };

  explicit FaultInjector(std::uint64_t seed = 0);

  /// Arms one fault. Must not race with Hit() (configure-then-attach).
  void Add(FaultSpec spec);
  /// Parses `text` with ParseFaultSpecs and arms every spec.
  Status AddFromString(std::string_view text);

  /// The per-site state for `name`, created on first use. Never null.
  /// The pointer is stable for the injector's lifetime.
  Site* site(std::string_view name);

  /// Records a hit at `name` (slow path: name lookup per call). Prefer
  /// resolving site() once for hot loops.
  Status Hit(const char* name) { return site(name)->Hit(); }

  /// Token tripped by kCancel fires. Wire into a SearchBudget or
  /// BatchBudget to let injected faults cancel work cooperatively.
  CancellationToken token() const { return cancel_.token(); }
  /// True iff a kCancel fault has fired.
  bool cancel_fired() const { return cancel_.cancel_requested(); }

  /// Also trip `source` when a kCancel fault fires — lets a caller that
  /// already owns a cancellation source (e.g. disc_cli's Ctrl-C source)
  /// observe injected cancellations without re-plumbing its tokens.
  /// Configure before attaching, like Add().
  void MirrorCancelTo(const CancellationSource& source) {
    cancel_mirrors_.push_back(source);
  }

  /// Total fires across all sites.
  std::uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }
  /// Fires at one site (0 when the site was never hit).
  std::uint64_t fires(std::string_view name);
  /// Hits at one site (0 when the site was never hit).
  std::uint64_t hit_count(std::string_view name);

  std::uint64_t seed() const { return seed_; }

 private:
  friend class Site;

  std::uint64_t seed_;
  CancellationSource cancel_;
  std::vector<CancellationSource> cancel_mirrors_;
  std::atomic<std::uint64_t> total_fires_{0};
  std::mutex mu_;  // guards sites_ map shape; Site state is lock-free
  std::vector<std::unique_ptr<Site>> sites_;
};

/// The process-wide injector, or nullptr when fault injection is disabled
/// (the default). Reading it is a single acquire load.
FaultInjector* GlobalFaultInjector();

/// Attaches (or detaches, with nullptr) the process-wide injector. The
/// caller keeps ownership and must detach before destroying it. Configure
/// all specs before attaching.
void AttachGlobalFaultInjector(FaultInjector* injector);

/// Resolves a site handle against the global injector: nullptr when fault
/// injection is disabled. Call once per object/scope, not per hit.
FaultInjector::Site* FaultSiteFor(const char* name);

/// Fault point for cold paths: records a hit against the global injector
/// and yields the resulting Status (OK when disabled). Usage:
///   if (Status s = DISC_FAULT_POINT("pipeline.index_build"); !s.ok()) ...
#define DISC_FAULT_POINT(site_name)                 \
  (::disc::GlobalFaultInjector() == nullptr         \
       ? ::disc::Status::OK()                       \
       : ::disc::GlobalFaultInjector()->Hit(site_name))

}  // namespace disc

#endif  // DISC_COMMON_FAULT_H_
