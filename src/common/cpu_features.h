#ifndef DISC_COMMON_CPU_FEATURES_H_
#define DISC_COMMON_CPU_FEATURES_H_

#include <optional>
#include <string_view>

namespace disc {

/// Instruction-set tier of the hand-vectorized distance kernels
/// (distance/columnar_simd.h, DESIGN.md §12). Ordered: a higher tier is a
/// strict superset of the lower ones, so "clamp to the minimum of requested
/// and supported" is always a safe resolution.
enum class SimdTier {
  kScalar = 0,  ///< portable reference kernels (distance/columnar.cc)
  kSse2 = 1,    ///< 2-wide double lanes (x86-64 baseline)
  kAvx2 = 2,    ///< 4-wide double lanes + FMA
};

/// Lower-case tier name for metrics labels, /statusz and logs:
/// "scalar" | "sse2" | "avx2".
const char* SimdTierName(SimdTier tier);

/// Parses a DISC_SIMD override value. Accepts the tier names plus "off"
/// (alias for "scalar"); "auto" and "" mean no override. Unknown values
/// return nullopt-with-no-override semantics at the caller (ResolveSimdTier
/// treats them as "auto" and logs a warning once).
std::optional<SimdTier> ParseSimdTier(std::string_view value);

/// The widest tier this *binary* carries kernels for — kAvx2 on an x86-64
/// build, kScalar when DISC_SIMD=OFF or on non-x86 targets. Build metadata
/// for /healthz and /statusz: together with DetectedSimdTier and
/// ActiveSimdTier it distinguishes "compiled out" from "CPU lacks it" from
/// "narrowed by DISC_SIMD".
SimdTier CompiledSimdTier();

/// The widest tier this CPU can execute, probed once via CPUID (the AVX2
/// tier additionally requires FMA — every AVX2-era core has it, but the
/// bits are distinct so both are checked). On non-x86 builds, or when the
/// CMake option DISC_SIMD is OFF, this is kScalar.
SimdTier DetectedSimdTier();

/// Pure resolution rule, split out for testability: the effective tier is
/// min(requested, detected) — an override can disable width the CPU has,
/// never enable width it lacks (forcing "avx2" on an SSE2-only machine must
/// not SIGILL, it degrades). `env_value` is the raw DISC_SIMD string
/// (nullptr/""/"auto" = no override).
SimdTier ResolveSimdTier(const char* env_value, SimdTier detected);

/// The tier every kernel dispatches on: ResolveSimdTier(getenv("DISC_SIMD"),
/// DetectedSimdTier()), resolved once on first use and latched for the
/// process lifetime (per-call getenv in the hot path would defeat the
/// point; a latched tier also keeps one run's results trivially coherent).
SimdTier ActiveSimdTier();

}  // namespace disc

#endif  // DISC_COMMON_CPU_FEATURES_H_
