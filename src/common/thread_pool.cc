#include "common/thread_pool.h"

#include <algorithm>

namespace disc {

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : queue_capacity_(std::max<std::size_t>(1, queue_capacity)) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::size_t ThreadPool::DefaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return stopping_ || queue_.size() < queue_capacity_;
    });
    if (stopping_) {
      // Dropping the task destroys its packaged_task; the caller's future
      // then reports broken_promise rather than hanging.
      return;
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    // The packaged_task wrapper captures any exception into the future.
    task();
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

}  // namespace disc
