#include "common/thread_pool.h"

#include <algorithm>
#include <exception>

#include "common/fault.h"
#include "common/trace.h"

namespace disc {

namespace {

/// Worker index within the owning WorkStealingPool; -1 on non-workers.
thread_local int t_worker_index = -1;

}  // namespace

ThreadPool::ThreadPool(std::size_t num_threads, std::size_t queue_capacity)
    : queue_capacity_(std::max<std::size_t>(1, queue_capacity)) {
  num_threads = std::max<std::size_t>(1, num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() { Shutdown(); }

std::size_t ThreadPool::DefaultThreadCount() {
  return std::max<std::size_t>(1, std::thread::hardware_concurrency());
}

void ThreadPool::Enqueue(std::function<void()> task) {
  {
    std::unique_lock<std::mutex> lock(mutex_);
    not_full_.wait(lock, [this] {
      return stopping_ || queue_.size() < queue_capacity_;
    });
    if (stopping_) {
      // Dropping the task destroys its packaged_task; the caller's future
      // then reports broken_promise rather than hanging.
      return;
    }
    queue_.push_back(std::move(task));
  }
  not_empty_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      not_empty_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ and fully drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    not_full_.notify_one();
    // The packaged_task wrapper captures any exception into the future.
    task();
  }
}

void ThreadPool::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  not_empty_.notify_all();
  not_full_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

/// One in-flight RunBatch: the shared task body, the count of queued or
/// running indices, and the first exception a task threw. All fields are
/// guarded by the pool mutex except `task`, which is immutable while the
/// batch lives.
struct WorkStealingPool::Batch {
  const std::function<void(std::size_t)>* task = nullptr;
  std::size_t pending = 0;
  std::exception_ptr error;
  /// `pool.task` fault site, resolved once per batch (null = faults off).
  FaultInjector::Site* fault = nullptr;
};

/// One in-flight ParallelFor: a fixed chunk layout over [begin, end) plus
/// claim/completion cursors. Lives on the owner's stack; the owner removes
/// it from the pool's group list before waiting out the last in-flight
/// chunks, and no worker touches it after its final `done` increment (made
/// under the pool mutex), so the stack lifetime is safe.
struct WorkStealingPool::NestedGroup {
  std::size_t begin = 0;
  std::size_t end = 0;
  std::size_t grain = 1;
  std::size_t chunks = 0;
  std::size_t next = 0;  ///< next chunk index to claim
  std::size_t done = 0;  ///< chunks fully executed
  const std::function<void(std::size_t, std::size_t, std::size_t)>* body =
      nullptr;
};

WorkStealingPool::WorkStealingPool(std::size_t num_threads) {
  num_threads = std::max<std::size_t>(1, num_threads);
  deques_.resize(num_threads);
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

WorkStealingPool::~WorkStealingPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

std::size_t WorkStealingPool::DefaultThreadCount() {
  return ThreadPool::DefaultThreadCount();
}

int WorkStealingPool::CurrentWorkerIndex() { return t_worker_index; }

void WorkStealingPool::RunTask(std::unique_lock<std::mutex>& lock,
                               QueuedTask item, bool stolen) {
  ++stats_.tasks;
  if (stolen) ++stats_.steals;
  lock.unlock();
  std::exception_ptr error;
  try {
    if (item.batch->fault != nullptr) {
      // A kError fault has no status channel at a task boundary, so its
      // Status is dropped; latency/cancel/kill kinds still take effect (a
      // kill surfaces through the batch error like any task exception).
      (void)item.batch->fault->Hit();
    }
    (*item.batch->task)(item.index);
  } catch (...) {
    error = std::current_exception();
  }
  lock.lock();
  if (error != nullptr && item.batch->error == nullptr) {
    item.batch->error = error;
  }
  if (--item.batch->pending == 0) progress_.notify_all();
}

bool WorkStealingPool::RunNestedChunk(std::unique_lock<std::mutex>& lock,
                                      NestedGroup* group) {
  NestedGroup* g = nullptr;
  if (group != nullptr) {
    if (group->next < group->chunks) g = group;
  } else {
    for (NestedGroup* candidate : nested_) {
      if (candidate->next < candidate->chunks) {
        g = candidate;
        break;
      }
    }
  }
  if (g == nullptr) return false;
  const std::size_t index = g->next++;
  ++stats_.nested_chunks;
  const std::size_t chunk_begin = g->begin + index * g->grain;
  const std::size_t chunk_end = std::min(g->end, chunk_begin + g->grain);
  const auto* body = g->body;
  lock.unlock();
  // `body` must not throw (ParallelFor contract); the scan chunks it runs
  // are plain arithmetic loops.
  (*body)(chunk_begin, chunk_end, index);
  lock.lock();
  if (++g->done == g->chunks) progress_.notify_all();
  return true;
}

void WorkStealingPool::WorkerLoop(std::size_t self) {
  t_worker_index = static_cast<int>(self);
  const std::size_t w = deques_.size();  // sized before any thread starts
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    // 1. Own deque, front: this worker's hardest remaining task.
    if (!deques_[self].empty()) {
      QueuedTask item = deques_[self].front();
      deques_[self].pop_front();
      RunTask(lock, item, /*stolen=*/false);
      continue;
    }
    // 2. Steal from the back of a victim deque (its cheapest queued task),
    //    victims scanned round-robin from this worker's index.
    bool stole = false;
    for (std::size_t offset = 1; offset < w; ++offset) {
      std::deque<QueuedTask>& victim = deques_[(self + offset) % w];
      if (!victim.empty()) {
        QueuedTask item = victim.back();
        victim.pop_back();
        RunTask(lock, item, /*stolen=*/true);
        stole = true;
        break;
      }
    }
    if (stole) continue;
    // 3. No batch work anywhere: help a straggler's nested scan chunks.
    if (RunNestedChunk(lock, nullptr)) continue;
    if (stopping_) return;
    // The park below is the steal_idle wall phase: when the profiler is
    // attached, meter how long this worker sat without runnable work. The
    // clock reads happen only when attached, so a detached pool pays one
    // atomic load per park.
    WallPhaseProfiler* profiler = GlobalWallProfiler();
    if (profiler != nullptr) {
      const std::uint64_t parked_ns = TraceNowNs();
      work_ready_.wait(lock);
      profiler->Add(TracePhase::kStealIdle, TraceNowNs() - parked_ns);
    } else {
      work_ready_.wait(lock);
    }
  }
}

void WorkStealingPool::RunBatch(const std::vector<std::size_t>& order,
                                const std::function<void(std::size_t)>& task) {
  if (order.empty()) return;
  Batch batch;
  batch.task = &task;
  batch.fault = FaultSiteFor("pool.task");
  {
    std::unique_lock<std::mutex> lock(mutex_);
    batch.pending = order.size();
    // Priority round-robin: order[k] goes to the back of deque k mod W, so
    // every deque holds its share in descending priority and the fronts
    // collectively cover the W hardest tasks.
    const std::size_t w = workers_.size();
    for (std::size_t k = 0; k < order.size(); ++k) {
      deques_[k % w].push_back(QueuedTask{&batch, order[k]});
    }
    work_ready_.notify_all();
    progress_.wait(lock, [&] { return batch.pending == 0; });
  }
  if (batch.error != nullptr) std::rethrow_exception(batch.error);
}

void WorkStealingPool::ParallelFor(
    std::size_t begin, std::size_t end, std::size_t grain,
    const std::function<void(std::size_t, std::size_t, std::size_t)>& body) {
  if (end <= begin) return;
  if (grain == 0) grain = 1;
  const std::size_t n = end - begin;
  const std::size_t chunks = (n + grain - 1) / grain;
  if (chunks < 2 || workers_.size() < 2) {
    body(begin, end, 0);
    return;
  }
  NestedGroup group;
  group.begin = begin;
  group.end = end;
  group.grain = grain;
  group.chunks = chunks;
  group.body = &body;
  std::unique_lock<std::mutex> lock(mutex_);
  nested_.push_back(&group);
  work_ready_.notify_all();
  // The caller works its own group dry (it never adopts another group's
  // chunks, keeping nesting deadlock-free)...
  while (RunNestedChunk(lock, &group)) {
  }
  // ...then retires the group so no further worker discovers it, and waits
  // out the chunks other workers still have in flight.
  nested_.erase(std::find(nested_.begin(), nested_.end(), &group));
  progress_.wait(lock, [&] { return group.done == group.chunks; });
}

WorkStealingPool::SchedStats WorkStealingPool::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t WorkStealingPool::queue_depth() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t depth = 0;
  for (const std::deque<QueuedTask>& d : deques_) depth += d.size();
  return depth;
}

}  // namespace disc
