#ifndef DISC_COMMON_TUPLE_H_
#define DISC_COMMON_TUPLE_H_

#include <cstddef>
#include <initializer_list>
#include <ostream>
#include <string>
#include <vector>

#include "common/value.h"

namespace disc {

/// A tuple over a relation scheme: an ordered list of attribute Values.
///
/// Tuples are value types (copyable/movable); the schema lives in Relation.
class Tuple {
 public:
  /// Constructs an empty tuple.
  Tuple() = default;
  /// Constructs a tuple with `arity` default (numeric 0) values.
  explicit Tuple(std::size_t arity) : values_(arity) {}
  /// Constructs a tuple from a list of values.
  Tuple(std::initializer_list<Value> values) : values_(values) {}
  /// Constructs a tuple from a vector of values.
  explicit Tuple(std::vector<Value> values) : values_(std::move(values)) {}
  /// Constructs an all-numeric tuple from doubles.
  static Tuple Numeric(std::initializer_list<double> values);
  /// Constructs an all-numeric tuple from a vector of doubles.
  static Tuple FromDoubles(const std::vector<double>& values);

  /// Number of attributes.
  std::size_t size() const { return values_.size(); }
  /// True iff the tuple has no attributes.
  bool empty() const { return values_.empty(); }

  /// Access attribute `i` (unchecked).
  const Value& operator[](std::size_t i) const { return values_[i]; }
  Value& operator[](std::size_t i) { return values_[i]; }

  /// Appends a value.
  void push_back(Value v) { values_.push_back(std::move(v)); }

  /// The underlying value vector.
  const std::vector<Value>& values() const { return values_; }

  /// Extracts all numeric attributes as doubles; string attributes are
  /// skipped. Useful for purely numeric relations.
  std::vector<double> ToDoubles() const;

  /// Renders as "(v1, v2, ...)".
  std::string ToString() const;

  friend bool operator==(const Tuple& a, const Tuple& b) {
    return a.values_ == b.values_;
  }
  friend bool operator!=(const Tuple& a, const Tuple& b) { return !(a == b); }

  std::vector<Value>::const_iterator begin() const { return values_.begin(); }
  std::vector<Value>::const_iterator end() const { return values_.end(); }

 private:
  std::vector<Value> values_;
};

std::ostream& operator<<(std::ostream& os, const Tuple& tuple);

/// A set of attribute indices, e.g. the unadjusted attributes X in the DISC
/// algorithm. Represented as a bitmask; supports up to 64 attributes, which
/// covers every dataset in the paper (max 57 for Spam).
class AttributeSet {
 public:
  /// Maximum number of representable attributes — the bitmask width. Code
  /// that derives an AttributeSet from wider data must reject it up front
  /// (see ValidateSaveArity in core/disc_saver.h) rather than truncate.
  static constexpr std::size_t kCapacity = 64;

  /// Constructs the empty set.
  AttributeSet() : bits_(0) {}
  /// Constructs from a raw bitmask.
  explicit AttributeSet(std::uint64_t bits) : bits_(bits) {}
  /// Constructs from a list of attribute indices.
  AttributeSet(std::initializer_list<std::size_t> indices);

  /// The full set {0, ..., arity-1}.
  static AttributeSet Full(std::size_t arity);

  /// True iff attribute `i` is in the set.
  bool contains(std::size_t i) const { return (bits_ >> i) & 1u; }
  /// Adds attribute `i`.
  void insert(std::size_t i) { bits_ |= (std::uint64_t{1} << i); }
  /// Removes attribute `i`.
  void erase(std::size_t i) { bits_ &= ~(std::uint64_t{1} << i); }
  /// Number of attributes in the set.
  std::size_t size() const;
  /// True iff the set is empty.
  bool empty() const { return bits_ == 0; }

  /// Returns this set with `i` added (non-mutating).
  AttributeSet With(std::size_t i) const {
    return AttributeSet(bits_ | (std::uint64_t{1} << i));
  }
  /// Set complement w.r.t. {0, ..., arity-1}.
  AttributeSet ComplementIn(std::size_t arity) const;

  /// The raw bitmask (usable as a hash/memo key).
  std::uint64_t bits() const { return bits_; }

  /// The member indices in increasing order.
  std::vector<std::size_t> ToIndices() const;

  friend bool operator==(const AttributeSet& a, const AttributeSet& b) {
    return a.bits_ == b.bits_;
  }

 private:
  std::uint64_t bits_;
};

}  // namespace disc

#endif  // DISC_COMMON_TUPLE_H_
