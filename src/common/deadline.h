#ifndef DISC_COMMON_DEADLINE_H_
#define DISC_COMMON_DEADLINE_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

namespace disc {

/// A wall-clock deadline on the steady clock (immune to NTP adjustments).
///
/// Value type: cheap to copy, trivially shareable across threads (it is just
/// a time point; whether it has passed is a pure function of the clock).
/// The default-constructed Deadline is infinite — `expired()` is always
/// false — so APIs can take a Deadline unconditionally and treat "no
/// deadline" as the zero value.
class Deadline {
 public:
  using Clock = std::chrono::steady_clock;

  /// Constructs the infinite deadline (never expires).
  constexpr Deadline() : point_(Clock::time_point::max()) {}

  /// The infinite deadline, spelled out.
  static constexpr Deadline Infinite() { return Deadline(); }

  /// A deadline at an absolute steady-clock time point.
  static Deadline At(Clock::time_point point) {
    Deadline d;
    d.point_ = point;
    return d;
  }

  /// A deadline `duration` from now. Non-positive durations yield an
  /// already-expired deadline.
  static Deadline After(Clock::duration duration) {
    return At(Clock::now() + duration);
  }

  /// A deadline `millis` milliseconds from now.
  static Deadline AfterMillis(std::int64_t millis) {
    return After(std::chrono::milliseconds(millis));
  }

  /// True iff this deadline never expires.
  constexpr bool is_infinite() const {
    return point_ == Clock::time_point::max();
  }

  /// True iff the deadline has passed. Infinite deadlines never expire.
  bool expired() const { return !is_infinite() && Clock::now() >= point_; }

  /// Time left before expiry, clamped at zero. Infinite deadlines report
  /// Clock::duration::max().
  Clock::duration remaining() const {
    if (is_infinite()) return Clock::duration::max();
    Clock::time_point now = Clock::now();
    return now >= point_ ? Clock::duration::zero() : point_ - now;
  }

  /// The underlying time point (Clock::time_point::max() when infinite).
  constexpr Clock::time_point point() const { return point_; }

  /// The earlier of two deadlines.
  static constexpr Deadline Min(Deadline a, Deadline b) {
    return a.point_ <= b.point_ ? a : b;
  }

  friend constexpr bool operator==(Deadline a, Deadline b) {
    return a.point_ == b.point_;
  }

 private:
  Clock::time_point point_;
};

}  // namespace disc

#endif  // DISC_COMMON_DEADLINE_H_
