#include "common/trace.h"

#include <chrono>
#include <cstdio>

#include "common/json_writer.h"

namespace disc {

std::uint64_t TraceNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

JsonlTraceSink::JsonlTraceSink(std::string path)
    : path_(std::move(path)), epoch_ns_(TraceNowNs()) {}

JsonlTraceSink::~JsonlTraceSink() { Close(); }

void JsonlTraceSink::Emit(const TraceSpan& span) {
  JsonWriter json;
  json.BeginObject();
  json.Key("span").String(span.name);
  // Spans that started before the sink existed clamp to the epoch rather
  // than wrapping the unsigned subtraction.
  json.Key("t_ns").Uint(span.start_ns >= epoch_ns_ ? span.start_ns - epoch_ns_
                                                   : 0);
  json.Key("dur_ns").Uint(span.duration_ns);
  for (const auto& [key, value] : span.str_attrs) json.Key(key).String(value);
  for (const auto& [key, value] : span.int_attrs) json.Key(key).Uint(value);
  for (const auto& [key, value] : span.num_attrs) json.Key(key).Number(value);
  json.EndObject();

  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  buffer_ += json.str();
  buffer_ += '\n';
}

bool JsonlTraceSink::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !failed_;
}

Status JsonlTraceSink::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return failed_ ? Status::Internal("trace write to " + path_ + " failed")
                   : Status::OK();
  }
  closed_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    failed_ = true;
    return Status::Internal("cannot open trace file " + path_);
  }
  std::size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (written != buffer_.size()) {
    failed_ = true;
    return Status::Internal("short write to trace file " + path_);
  }
  return Status::OK();
}

}  // namespace disc
