#include "common/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <thread>

#include "common/json_writer.h"

namespace disc {

namespace {

/// splitmix64 finalizer (Steele et al.); the whole id scheme rides on it.
std::uint64_t SplitMix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::atomic<std::uint64_t> g_batch_counter{1};

std::atomic<WallPhaseProfiler*> g_wall_profiler{nullptr};
std::atomic<TraceRecorder*> g_trace_recorder{nullptr};

/// Stable per-thread shard index (same discipline as MetricsRegistry).
std::size_t ThisThreadShard(std::size_t shards) {
  static thread_local const std::size_t hashed =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return hashed % shards;
}

}  // namespace

std::uint64_t TraceNowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// ---------------------------------------------------------------------------
// Deterministic id derivation
// ---------------------------------------------------------------------------

std::uint64_t TraceMix(std::uint64_t seed, std::uint64_t value) {
  // xor-fold the value in before finalizing; the odd multiplier keeps
  // (seed, value) pairs from aliasing (TraceMix(a, b) != TraceMix(b, a)).
  return SplitMix64(seed ^ (value * 0xff51afd7ed558ccdULL + 1));
}

std::uint64_t NextTraceBatchSeed() {
  return SplitMix64(
      g_batch_counter.fetch_add(1, std::memory_order_relaxed));
}

void SetTraceBatchCounterForTest(std::uint64_t value) {
  g_batch_counter.store(value, std::memory_order_relaxed);
}

std::uint64_t DeriveTraceId(std::uint64_t batch_seed, std::uint64_t ordinal) {
  std::uint64_t id = TraceMix(batch_seed, ordinal);
  return id != 0 ? id : 1;  // 0 is reserved for "untraced"
}

std::uint64_t DeriveSpanId(std::uint64_t parent, TraceSpanKind kind,
                           std::uint64_t ordinal) {
  std::uint64_t id =
      TraceMix(TraceMix(parent, static_cast<std::uint64_t>(kind)), ordinal);
  return id != 0 ? id : 1;
}

const char* TracePhaseName(TracePhase phase) {
  switch (phase) {
    case TracePhase::kIndexQuery:
      return "index_query";
    case TracePhase::kBoundsScan:
      return "bounds_scan";
    case TracePhase::kDcacheFill:
      return "dcache_fill";
    case TracePhase::kEstimate:
      return "estimate";
    case TracePhase::kVerdict:
      return "verdict";
    case TracePhase::kStealIdle:
      return "steal_idle";
  }
  return "unknown";
}

// ---------------------------------------------------------------------------
// SpanCollector
// ---------------------------------------------------------------------------

SpanCollector::SpanCollector(std::size_t slots)
    : slots_(std::max<std::size_t>(1, slots)) {}

void SpanCollector::Record(std::size_t slot, TraceSpan span) {
  slots_[slot].spans.push_back(std::move(span));
}

std::vector<TraceSpan> SpanCollector::Drain() {
  std::vector<TraceSpan> all;
  std::size_t total = 0;
  for (const Slot& slot : slots_) total += slot.spans.size();
  all.reserve(total);
  for (Slot& slot : slots_) {
    for (TraceSpan& span : slot.spans) all.push_back(std::move(span));
    slot.spans.clear();
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     if (a.trace_id != b.trace_id)
                       return a.trace_id < b.trace_id;
                     return a.span_id < b.span_id;
                   });
  return all;
}

// ---------------------------------------------------------------------------
// WallPhaseProfiler
// ---------------------------------------------------------------------------

WallPhaseProfiler::WallPhaseProfiler() {
  for (Shard& shard : shards_) {
    for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
      shard.ns[p].store(0, std::memory_order_relaxed);
      shard.count[p].store(0, std::memory_order_relaxed);
    }
  }
}

void WallPhaseProfiler::Add(TracePhase phase, std::uint64_t ns) {
  Shard& shard = shards_[ThisThreadShard(kShards)];
  const std::size_t p = static_cast<std::size_t>(phase);
  shard.ns[p].fetch_add(ns, std::memory_order_relaxed);
  shard.count[p].fetch_add(1, std::memory_order_relaxed);
}

std::array<WallPhaseProfiler::PhaseTotal, kTracePhaseCount>
WallPhaseProfiler::SumRaw() const {
  std::array<PhaseTotal, kTracePhaseCount> totals{};
  for (const Shard& shard : shards_) {
    for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
      totals[p].ns += shard.ns[p].load(std::memory_order_relaxed);
      totals[p].count += shard.count[p].load(std::memory_order_relaxed);
    }
  }
  return totals;
}

std::array<WallPhaseProfiler::PhaseTotal, kTracePhaseCount>
WallPhaseProfiler::Snapshot() const {
  std::array<PhaseTotal, kTracePhaseCount> totals = SumRaw();
  std::lock_guard<std::mutex> lock(baseline_mu_);
  for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
    // A shard add can land between the sum and the baseline snapshot;
    // saturate rather than wrap.
    totals[p].ns -= std::min(totals[p].ns, baseline_[p].ns);
    totals[p].count -= std::min(totals[p].count, baseline_[p].count);
  }
  return totals;
}

void WallPhaseProfiler::Reset() {
  std::array<PhaseTotal, kTracePhaseCount> totals = SumRaw();
  std::lock_guard<std::mutex> lock(baseline_mu_);
  baseline_ = totals;
}

std::string WallPhaseProfiler::ToJson() const {
  const std::array<PhaseTotal, kTracePhaseCount> totals = Snapshot();
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(1);
  json.Key("phases").BeginObject();
  for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
    json.Key(TracePhaseName(static_cast<TracePhase>(p))).BeginObject();
    json.Key("wall_ns").Uint(totals[p].ns);
    json.Key("count").Uint(totals[p].count);
    json.EndObject();
  }
  json.EndObject();
  // Folded-stack flamegraph lines (flamegraph.pl / speedscope "folded"
  // input): "root;phase value". steal_idle is scheduler time, not save
  // time, so it folds under its own root.
  json.Key("folded").BeginArray();
  for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
    const TracePhase phase = static_cast<TracePhase>(p);
    const char* root =
        phase == TracePhase::kStealIdle ? "disc_pool" : "disc_save";
    json.String(std::string(root) + ";" + TracePhaseName(phase) + " " +
                std::to_string(totals[p].ns));
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

WallPhaseProfiler* GlobalWallProfiler() {
  return g_wall_profiler.load(std::memory_order_acquire);
}

void AttachGlobalWallProfiler(WallPhaseProfiler* profiler) {
  g_wall_profiler.store(profiler, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// TraceRecorder
// ---------------------------------------------------------------------------

TraceRecorder::TraceRecorder(std::size_t recent_capacity,
                             std::uint64_t slow_threshold_ns)
    : capacity_(std::max<std::size_t>(1, recent_capacity)),
      slow_threshold_ns_(slow_threshold_ns),
      epoch_ns_(TraceNowNs()) {}

void TraceRecorder::RecordFinished(const TraceSpan& span) {
  if (span.duration_ns < slow_threshold_ns_) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (recent_.size() < capacity_) {
    recent_.push_back(span);
  } else {
    recent_[next_] = span;
    next_ = (next_ + 1) % capacity_;
  }
}

int TraceRecorder::BeginActive(const char* name, std::uint64_t trace_id,
                               std::uint64_t span_id, std::uint64_t start_ns) {
  for (std::size_t i = 0; i < kActiveSlots; ++i) {
    ActiveSlot& slot = active_[i];
    std::uint64_t expected = 0;
    if (slot.state.compare_exchange_strong(expected, 1,
                                           std::memory_order_acq_rel)) {
      slot.name.store(name, std::memory_order_relaxed);
      slot.trace_id.store(trace_id, std::memory_order_relaxed);
      slot.span_id.store(span_id, std::memory_order_relaxed);
      slot.start_ns.store(start_ns, std::memory_order_relaxed);
      slot.state.store(2, std::memory_order_release);
      return static_cast<int>(i);
    }
  }
  return -1;  // table full: this search goes unlisted (best-effort)
}

void TraceRecorder::EndActive(int slot) {
  if (slot < 0) return;
  active_[static_cast<std::size_t>(slot)].state.store(
      0, std::memory_order_release);
}

std::string TraceRecorder::ToJson() const {
  const std::uint64_t now = TraceNowNs();
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(1);
  json.Key("recent_capacity").Uint(capacity_);
  json.Key("slow_threshold_ns").Uint(slow_threshold_ns_);
  json.Key("recent").BeginArray();
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Oldest first: [next_, end) then [0, next_).
    for (std::size_t k = 0; k < recent_.size(); ++k) {
      const std::size_t i =
          recent_.size() < capacity_ ? k : (next_ + k) % capacity_;
      AppendTraceSpanJson(json, recent_[i], epoch_ns_);
    }
  }
  json.EndArray();
  json.Key("active").BeginArray();
  for (const ActiveSlot& slot : active_) {
    if (slot.state.load(std::memory_order_acquire) != 2) continue;
    // The slot can be reused while we read it; the atomic fields keep the
    // read race-free, and a torn (reused) entry is acceptable noise on a
    // best-effort debug endpoint.
    const char* name = slot.name.load(std::memory_order_relaxed);
    const std::uint64_t start = slot.start_ns.load(std::memory_order_relaxed);
    json.BeginObject();
    json.Key("span").String(name != nullptr ? name : "unknown");
    json.Key("trace_id").Uint(slot.trace_id.load(std::memory_order_relaxed));
    json.Key("span_id").Uint(slot.span_id.load(std::memory_order_relaxed));
    json.Key("t_ns").Uint(start >= epoch_ns_ ? start - epoch_ns_ : 0);
    json.Key("elapsed_ns").Uint(now >= start ? now - start : 0);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

TraceRecorder* GlobalTraceRecorder() {
  return g_trace_recorder.load(std::memory_order_acquire);
}

void AttachGlobalTraceRecorder(TraceRecorder* recorder) {
  g_trace_recorder.store(recorder, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// SearchTrace + PhaseScope
// ---------------------------------------------------------------------------

void SearchTrace::FlushPhaseSpans(std::size_t slot) {
  for (std::size_t p = 0; p < kTracePhaseCount; ++p) {
    const PhaseAcc& acc = phases[p];
    if (acc.count == 0) continue;
    const TracePhase phase = static_cast<TracePhase>(p);
    if (profiler != nullptr) profiler->Add(phase, acc.ns);
    if (collector != nullptr) {
      TraceSpan span;
      span.name = TracePhaseName(phase);
      span.start_ns = acc.first_start_ns;
      span.duration_ns = acc.ns;
      span.trace_id = trace_id;
      span.span_id = PhaseSpanId(phase);
      span.parent_id = search_span_id;
      span.Int("count", acc.count);
      collector->Record(slot, std::move(span));
    }
  }
}

PhaseScope::PhaseScope(SearchTrace* trace, TracePhase phase)
    : trace_(trace), prev_(nullptr), phase_(phase) {
  if (trace_ == nullptr || !trace_->enabled()) {
    trace_ = nullptr;
    return;
  }
  const std::uint64_t now = TraceNowNs();
  prev_ = static_cast<PhaseScope*>(trace_->active_scope);
  if (prev_ != nullptr) {
    // Pause the enclosing phase: bank its running segment.
    prev_->banked_ns_ += now - prev_->segment_start_ns_;
  }
  first_start_ns_ = now;
  segment_start_ns_ = now;
  trace_->active_scope = this;
}

PhaseScope::~PhaseScope() {
  if (trace_ == nullptr) return;
  const std::uint64_t now = TraceNowNs();
  banked_ns_ += now - segment_start_ns_;
  SearchTrace::PhaseAcc& acc =
      trace_->phases[static_cast<std::size_t>(phase_)];
  acc.ns += banked_ns_;
  acc.count += 1;
  if (acc.first_start_ns == 0) acc.first_start_ns = first_start_ns_;
  if (prev_ != nullptr) prev_->segment_start_ns_ = now;  // resume outer
  trace_->active_scope = prev_;
}

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

void AppendTraceSpanJson(JsonWriter& json, const TraceSpan& span,
                         std::uint64_t epoch_ns) {
  json.BeginObject();
  json.Key("span").String(span.name);
  // Spans that started before the sink existed clamp to the epoch rather
  // than wrapping the unsigned subtraction.
  json.Key("t_ns").Uint(span.start_ns >= epoch_ns ? span.start_ns - epoch_ns
                                                  : 0);
  json.Key("dur_ns").Uint(span.duration_ns);
  json.Key("trace_id").Uint(span.trace_id);
  json.Key("span_id").Uint(span.span_id);
  json.Key("parent_id").Uint(span.parent_id);
  for (const auto& [key, value] : span.str_attrs) json.Key(key).String(value);
  for (const auto& [key, value] : span.int_attrs) json.Key(key).Uint(value);
  for (const auto& [key, value] : span.num_attrs) json.Key(key).Number(value);
  json.EndObject();
}

JsonlTraceSink::JsonlTraceSink(std::string path)
    : path_(std::move(path)), epoch_ns_(TraceNowNs()) {}

JsonlTraceSink::~JsonlTraceSink() { Close(); }

void JsonlTraceSink::Emit(const TraceSpan& span) {
  JsonWriter json;
  AppendTraceSpanJson(json, span, epoch_ns_);

  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  buffer_ += json.str();
  buffer_ += '\n';
}

bool JsonlTraceSink::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !failed_;
}

Status JsonlTraceSink::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return failed_ ? Status::Internal("trace write to " + path_ + " failed")
                   : Status::OK();
  }
  closed_ = true;
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    failed_ = true;
    return Status::Internal("cannot open trace file " + path_);
  }
  std::size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (written != buffer_.size()) {
    failed_ = true;
    return Status::Internal("short write to trace file " + path_);
  }
  return Status::OK();
}

}  // namespace disc
