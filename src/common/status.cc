#include "common/status.h"

namespace disc {

namespace {

const char* CodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kOutOfRange:
      return "OUT_OF_RANGE";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kIoError:
      return "IO_ERROR";
    case StatusCode::kDeadlineExceeded:
      return "DEADLINE_EXCEEDED";
    case StatusCode::kCancelled:
      return "CANCELLED";
    case StatusCode::kResourceExhausted:
      return "RESOURCE_EXHAUSTED";
  }
  return "UNKNOWN";
}

}  // namespace

Status Status::InvalidArgument(std::string message) {
  return Status(StatusCode::kInvalidArgument, std::move(message));
}

Status Status::NotFound(std::string message) {
  return Status(StatusCode::kNotFound, std::move(message));
}

Status Status::OutOfRange(std::string message) {
  return Status(StatusCode::kOutOfRange, std::move(message));
}

Status Status::FailedPrecondition(std::string message) {
  return Status(StatusCode::kFailedPrecondition, std::move(message));
}

Status Status::Internal(std::string message) {
  return Status(StatusCode::kInternal, std::move(message));
}

Status Status::IoError(std::string message) {
  return Status(StatusCode::kIoError, std::move(message));
}

Status Status::DeadlineExceeded(std::string message) {
  return Status(StatusCode::kDeadlineExceeded, std::move(message));
}

Status Status::Cancelled(std::string message) {
  return Status(StatusCode::kCancelled, std::move(message));
}

Status Status::ResourceExhausted(std::string message) {
  return Status(StatusCode::kResourceExhausted, std::move(message));
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = CodeName(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& status) {
  return os << status.ToString();
}

}  // namespace disc
