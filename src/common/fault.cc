#include "common/fault.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/metrics.h"
#include "common/stringutil.h"

namespace disc {
namespace {

std::atomic<FaultInjector*> g_fault_injector{nullptr};

// SplitMix64: enough mixing to turn (seed, site, hit) into an independent
// uniform draw; deterministic and allocation-free.
std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

std::uint64_t HashName(std::string_view name) {
  std::uint64_t h = 0xCBF29CE484222325ull;  // FNV-1a
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

// Uniform draw in [0, 1) from (seed, site, hit index).
double UnitDraw(std::uint64_t seed, std::uint64_t site_hash, std::uint64_t h) {
  const std::uint64_t bits = Mix64(seed ^ Mix64(site_hash) ^ Mix64(h));
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool TriggerMatches(const FaultSpec& spec, std::uint64_t h, std::uint64_t seed,
                    std::uint64_t site_hash) {
  if (!spec.schedule.empty()) {
    return std::binary_search(spec.schedule.begin(), spec.schedule.end(), h);
  }
  if (spec.probability > 0.0) {
    return UnitDraw(seed, site_hash, h) < spec.probability;
  }
  if (h < spec.nth) return false;
  if (spec.every == 0) return h == spec.nth;
  return (h - spec.nth) % spec.every == 0;
}

bool ParseUint64(std::string_view s, std::uint64_t* out) {
  if (s.empty()) return false;
  std::uint64_t v = 0;
  for (char c : s) {
    if (c < '0' || c > '9') return false;
    v = v * 10 + static_cast<std::uint64_t>(c - '0');
  }
  *out = v;
  return true;
}

bool ParseKindName(std::string_view s, FaultKind* out) {
  if (s == "error") {
    *out = FaultKind::kError;
  } else if (s == "latency") {
    *out = FaultKind::kLatency;
  } else if (s == "cancel") {
    *out = FaultKind::kCancel;
  } else if (s == "alloc") {
    *out = FaultKind::kAllocFail;
  } else if (s == "kill") {
    *out = FaultKind::kKill;
  } else {
    return false;
  }
  return true;
}

bool ParseCodeName(std::string_view s, StatusCode* out) {
  if (s == "invalid_argument") {
    *out = StatusCode::kInvalidArgument;
  } else if (s == "not_found") {
    *out = StatusCode::kNotFound;
  } else if (s == "failed_precondition") {
    *out = StatusCode::kFailedPrecondition;
  } else if (s == "internal") {
    *out = StatusCode::kInternal;
  } else if (s == "io_error") {
    *out = StatusCode::kIoError;
  } else if (s == "deadline_exceeded") {
    *out = StatusCode::kDeadlineExceeded;
  } else if (s == "cancelled") {
    *out = StatusCode::kCancelled;
  } else if (s == "resource_exhausted") {
    *out = StatusCode::kResourceExhausted;
  } else {
    return false;
  }
  return true;
}

}  // namespace

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kError:
      return "error";
    case FaultKind::kLatency:
      return "latency";
    case FaultKind::kCancel:
      return "cancel";
    case FaultKind::kAllocFail:
      return "alloc";
    case FaultKind::kKill:
      return "kill";
  }
  return "unknown";
}

Result<std::vector<FaultSpec>> ParseFaultSpecs(std::string_view text) {
  std::vector<FaultSpec> specs;
  for (const std::string& piece : Split(text, ';')) {
    const std::string trimmed = Trim(piece);
    if (trimmed.empty()) continue;
    const std::vector<std::string> parts = Split(trimmed, ':');
    if (parts.size() < 2 || parts.size() > 3) {
      return Status::InvalidArgument(StrFormat(
          "fault spec '%s' must be site:kind[:key=value,...]",
          trimmed.c_str()));
    }
    FaultSpec spec;
    spec.site = Trim(parts[0]);
    if (spec.site.empty()) {
      return Status::InvalidArgument(
          StrFormat("fault spec '%s' has an empty site", trimmed.c_str()));
    }
    if (!ParseKindName(Trim(parts[1]), &spec.kind)) {
      return Status::InvalidArgument(StrFormat(
          "fault spec '%s': unknown kind '%s' (expected error, latency, "
          "cancel, alloc, or kill)",
          trimmed.c_str(), Trim(parts[1]).c_str()));
    }
    if (parts.size() == 3) {
      for (const std::string& kv : Split(parts[2], ',')) {
        const std::string entry = Trim(kv);
        if (entry.empty()) continue;
        const std::size_t eq = entry.find('=');
        if (eq == std::string::npos) {
          return Status::InvalidArgument(StrFormat(
              "fault spec '%s': option '%s' is not key=value",
              trimmed.c_str(), entry.c_str()));
        }
        const std::string key = Trim(entry.substr(0, eq));
        const std::string value = Trim(entry.substr(eq + 1));
        bool ok = true;
        if (key == "nth") {
          ok = ParseUint64(value, &spec.nth);
        } else if (key == "every") {
          ok = ParseUint64(value, &spec.every);
        } else if (key == "max") {
          ok = ParseUint64(value, &spec.max_fires);
        } else if (key == "ms") {
          std::uint64_t ms = 0;
          ok = ParseUint64(value, &ms) && ms <= 60'000;
          spec.latency_ms = static_cast<std::uint32_t>(ms);
        } else if (key == "p") {
          double p = 0.0;
          ok = ParseDouble(value, &p) && p >= 0.0 && p <= 1.0;
          spec.probability = p;
        } else if (key == "code") {
          ok = ParseCodeName(value, &spec.code);
        } else if (key == "at") {
          for (const std::string& idx : Split(value, '+')) {
            std::uint64_t v = 0;
            if (!ParseUint64(Trim(idx), &v)) {
              ok = false;
              break;
            }
            spec.schedule.push_back(v);
          }
        } else {
          return Status::InvalidArgument(StrFormat(
              "fault spec '%s': unknown key '%s'", trimmed.c_str(),
              key.c_str()));
        }
        if (!ok) {
          return Status::InvalidArgument(StrFormat(
              "fault spec '%s': bad value '%s' for key '%s'", trimmed.c_str(),
              value.c_str(), key.c_str()));
        }
      }
    }
    std::sort(spec.schedule.begin(), spec.schedule.end());
    specs.push_back(std::move(spec));
  }
  return specs;
}

FaultInjector::Site::Site(FaultInjector* owner, std::string name)
    : owner_(owner), name_(std::move(name)), name_hash_(HashName(name_)) {}

Status FaultInjector::Site::Hit() {
  const std::uint64_t h = hits_.fetch_add(1, std::memory_order_relaxed);
  for (const std::unique_ptr<Rule>& rule : rules_) {
    const FaultSpec& spec = rule->spec;
    if (!TriggerMatches(spec, h, owner_->seed_, name_hash_)) continue;
    // Claim one of the spec's allowed fires; the fetch_add makes the
    // max_fires cap exact even when hits race.
    if (rule->fires.fetch_add(1, std::memory_order_relaxed) >=
        spec.max_fires) {
      continue;
    }
    fires_.fetch_add(1, std::memory_order_relaxed);
    owner_->total_fires_.fetch_add(1, std::memory_order_relaxed);
    if (MetricsRegistry* metrics = GlobalMetrics()) {
      metrics
          ->GetCounter("disc_fault_injected_total",
                       "Faults fired by the attached FaultInjector.")
          ->Add(1);
    }
    switch (spec.kind) {
      case FaultKind::kLatency:
        std::this_thread::sleep_for(std::chrono::milliseconds(spec.latency_ms));
        return Status::OK();
      case FaultKind::kCancel:
        owner_->cancel_.RequestCancel();
        for (CancellationSource& mirror : owner_->cancel_mirrors_) {
          mirror.RequestCancel();
        }
        return Status::OK();
      case FaultKind::kError:
        return Status(spec.code,
                      StrFormat("injected fault at %s (hit %llu)",
                                name_.c_str(),
                                static_cast<unsigned long long>(h)));
      case FaultKind::kAllocFail:
        return Status::ResourceExhausted(
            StrFormat("injected allocation failure at %s (hit %llu)",
                      name_.c_str(), static_cast<unsigned long long>(h)));
      case FaultKind::kKill:
        throw FaultInjectedError(
            StrFormat("injected crash at %s (hit %llu)", name_.c_str(),
                      static_cast<unsigned long long>(h)));
    }
  }
  return Status::OK();
}

FaultInjector::FaultInjector(std::uint64_t seed) : seed_(seed) {}

void FaultInjector::Add(FaultSpec spec) {
  std::sort(spec.schedule.begin(), spec.schedule.end());
  Site* s = site(spec.site);
  auto rule = std::make_unique<Site::Rule>();
  rule->spec = std::move(spec);
  s->rules_.push_back(std::move(rule));
}

Status FaultInjector::AddFromString(std::string_view text) {
  Result<std::vector<FaultSpec>> parsed = ParseFaultSpecs(text);
  if (!parsed.ok()) return parsed.status();
  for (const FaultSpec& spec : parsed.value()) Add(spec);
  return Status::OK();
}

FaultInjector::Site* FaultInjector::site(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const std::unique_ptr<Site>& s : sites_) {
    if (s->name_ == name) return s.get();
  }
  sites_.push_back(
      std::unique_ptr<Site>(new Site(this, std::string(name))));
  return sites_.back().get();
}

std::uint64_t FaultInjector::fires(std::string_view name) {
  return site(name)->fires();
}

std::uint64_t FaultInjector::hit_count(std::string_view name) {
  return site(name)->hits();
}

FaultInjector* GlobalFaultInjector() {
  return g_fault_injector.load(std::memory_order_acquire);
}

void AttachGlobalFaultInjector(FaultInjector* injector) {
  g_fault_injector.store(injector, std::memory_order_release);
}

FaultInjector::Site* FaultSiteFor(const char* name) {
  FaultInjector* injector = GlobalFaultInjector();
  return injector == nullptr ? nullptr : injector->site(name);
}

}  // namespace disc
