#include "obs/explain.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/json_writer.h"
#include "common/metrics.h"

namespace disc {

namespace {

std::atomic<ExplainRecorder*> g_explain_recorder{nullptr};

constexpr ExplainAction kAllActions[] = {
    ExplainAction::kExpand,          ExplainAction::kPruneLb,
    ExplainAction::kPruneBudget,     ExplainAction::kInfeasible,
    ExplainAction::kIncumbentUpdate, ExplainAction::kMemoHit,
    ExplainAction::kRevertRefine,
};

/// The size of the attribute set encoded in `bits` (the node's B&B depth).
std::uint64_t PopCount(std::uint64_t bits) {
  std::uint64_t n = 0;
  while (bits != 0) {
    bits &= bits - 1;
    ++n;
  }
  return n;
}

void AppendEventJson(JsonWriter& json, const ExplainEvent& event) {
  json.BeginObject();
  json.Key("x").Uint(event.x_bits);
  json.Key("action").String(ExplainActionName(event.action));
  if (event.seed) json.Key("seed").Bool(true);
  if (std::isfinite(event.lb)) json.Key("lb").Number(event.lb);
  if (std::isinf(event.lb) && event.lb > 0) {
    json.Key("lb_infeasible").Bool(true);
  }
  if (std::isfinite(event.ub)) json.Key("ub").Number(event.ub);
  const double gap = event.gap();
  if (std::isfinite(gap)) json.Key("gap").Number(gap);
  if (std::isfinite(event.incumbent)) {
    json.Key("incumbent").Number(event.incumbent);
  }
  if (event.donor_row != kExplainNoDonor) {
    json.Key("donor_row").Uint(event.donor_row);
  }
  json.EndObject();
}

void AppendSummaryJson(JsonWriter& json, const ExplainSummary& summary) {
  json.BeginObject();
  json.Key("actions").BeginObject();
  for (ExplainAction action : kAllActions) {
    json.Key(ExplainActionName(action))
        .Uint(summary.action_counts[static_cast<std::size_t>(action)]);
  }
  json.EndObject();
  json.Key("first_feasible_depth").Int(summary.first_feasible_depth);
  json.Key("timeline").BeginArray();
  for (const ExplainIncumbentStep& step : summary.timeline) {
    json.BeginObject();
    json.Key("event").Uint(step.event_index);
    json.Key("depth").Uint(step.depth);
    json.Key("cost").Number(step.cost);
    json.EndObject();
  }
  json.EndArray();
  if (std::isfinite(summary.max_lb_over_cost)) {
    json.Key("max_lb_over_cost").Number(summary.max_lb_over_cost);
  }
  if (std::isfinite(summary.first_ub_over_cost)) {
    json.Key("first_ub_over_cost").Number(summary.first_ub_over_cost);
  }
  json.Key("bound_gap").BeginObject();
  json.Key("events").Uint(summary.gap_events);
  if (std::isfinite(summary.min_gap)) json.Key("min").Number(summary.min_gap);
  if (std::isfinite(summary.mean_gap)) {
    json.Key("mean").Number(summary.mean_gap);
  }
  json.EndObject();
  json.EndObject();
}

/// The /explainz per-search entry: the summary plus its identity fields.
void AppendRecorderEntryJson(JsonWriter& json, const ExplainSummary& summary) {
  json.BeginObject();
  json.Key("ordinal").Uint(summary.ordinal);
  json.Key("trace_id").Uint(summary.trace_id);
  json.Key("algo").String(summary.algo);
  json.Key("termination").String(summary.termination);
  json.Key("feasible").Bool(summary.feasible);
  if (std::isfinite(summary.final_cost)) {
    json.Key("cost").Number(summary.final_cost);
  }
  json.Key("wall_nanos").Uint(summary.wall_nanos);
  json.Key("events").Uint(summary.events);
  json.Key("dropped_events").Uint(summary.dropped_events);
  json.Key("abandoned_scans").Uint(summary.abandoned_scans);
  json.Key("summary");
  AppendSummaryJson(json, summary);
  json.EndObject();
}

}  // namespace

const char* ExplainActionName(ExplainAction action) {
  switch (action) {
    case ExplainAction::kExpand:
      return "expand";
    case ExplainAction::kPruneLb:
      return "prune_lb";
    case ExplainAction::kPruneBudget:
      return "prune_budget";
    case ExplainAction::kInfeasible:
      return "infeasible";
    case ExplainAction::kIncumbentUpdate:
      return "incumbent_update";
    case ExplainAction::kMemoHit:
      return "memo_hit";
    case ExplainAction::kRevertRefine:
      return "revert_refine";
  }
  return "unknown";
}

double ExplainEvent::gap() const {
  if (!std::isfinite(lb) || !std::isfinite(ub)) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  return ub - lb;
}

// ---------------------------------------------------------------------------
// Summarize
// ---------------------------------------------------------------------------

ExplainSummary Summarize(const ExplainSearchLog& log) {
  ExplainSummary summary;
  summary.ordinal = log.ordinal;
  summary.trace_id = log.trace_id;
  summary.algo = log.algo;
  summary.termination = log.termination;
  summary.feasible = log.feasible;
  summary.final_cost = log.final_cost;
  summary.wall_nanos = log.wall_nanos;
  summary.events = log.events.size();
  summary.dropped_events = log.dropped_events;
  summary.abandoned_scans = log.abandoned_scans;

  double max_lb = std::numeric_limits<double>::quiet_NaN();
  double first_ub = std::numeric_limits<double>::quiet_NaN();
  double gap_sum = 0;
  for (std::size_t i = 0; i < log.events.size(); ++i) {
    const ExplainEvent& event = log.events[i];
    ++summary.action_counts[static_cast<std::size_t>(event.action)];
    if (event.action == ExplainAction::kIncumbentUpdate) {
      const std::uint64_t depth = PopCount(event.x_bits);
      if (summary.first_feasible_depth < 0) {
        summary.first_feasible_depth = static_cast<std::int64_t>(depth);
      }
      ExplainIncumbentStep step;
      step.event_index = i;
      step.depth = depth;
      step.cost = event.incumbent;
      if (summary.timeline.size() < kExplainTimelineCap) {
        summary.timeline.push_back(step);
      } else {
        // Keep the earliest adoptions and always the final one.
        summary.timeline.back() = step;
      }
    }
    if (std::isfinite(event.lb) && !(event.lb <= max_lb)) max_lb = event.lb;
    if (std::isfinite(event.ub) && !std::isfinite(first_ub)) {
      first_ub = event.ub;
    }
    const double gap = event.gap();
    if (std::isfinite(gap)) {
      ++summary.gap_events;
      gap_sum += gap;
      if (!(gap >= summary.min_gap)) summary.min_gap = gap;
    }
  }
  if (summary.gap_events > 0) {
    summary.mean_gap = gap_sum / static_cast<double>(summary.gap_events);
  }
  if (log.feasible && std::isfinite(log.final_cost) && log.final_cost > 0) {
    if (std::isfinite(max_lb)) {
      summary.max_lb_over_cost = max_lb / log.final_cost;
    }
    if (std::isfinite(first_ub)) {
      summary.first_ub_over_cost = first_ub / log.final_cost;
    }
  }
  return summary;
}

// ---------------------------------------------------------------------------
// ExplainCollector
// ---------------------------------------------------------------------------

ExplainCollector::ExplainCollector(std::size_t slots)
    : slots_(slots > 0 ? slots : 1) {}

void ExplainCollector::Record(std::size_t slot, ExplainSearchLog log) {
  slots_[slot < slots_.size() ? slot : slots_.size() - 1].logs.push_back(
      std::move(log));
}

std::vector<ExplainSearchLog> ExplainCollector::Drain() {
  std::vector<ExplainSearchLog> all;
  std::size_t total = 0;
  for (const Slot& slot : slots_) total += slot.logs.size();
  all.reserve(total);
  for (Slot& slot : slots_) {
    for (ExplainSearchLog& log : slot.logs) all.push_back(std::move(log));
    slot.logs.clear();
  }
  std::sort(all.begin(), all.end(),
            [](const ExplainSearchLog& a, const ExplainSearchLog& b) {
              if (a.ordinal != b.ordinal) return a.ordinal < b.ordinal;
              return a.attempt < b.attempt;
            });
  return all;
}

// ---------------------------------------------------------------------------
// JSONL serialization + sink
// ---------------------------------------------------------------------------

void AppendExplainSearchJson(JsonWriter& json, const ExplainSearchLog& log) {
  json.BeginObject();
  json.Key("schema_version").Int(1);
  json.Key("ordinal").Uint(log.ordinal);
  json.Key("trace_id").Uint(log.trace_id);
  json.Key("attempt").Uint(log.attempt);
  json.Key("algo").String(log.algo);
  json.Key("termination").String(log.termination);
  json.Key("feasible").Bool(log.feasible);
  if (std::isfinite(log.final_cost)) json.Key("cost").Number(log.final_cost);
  json.Key("global_lb").Number(log.global_lb);
  json.Key("wall_nanos").Uint(log.wall_nanos);
  json.Key("visited_sets").Uint(log.visited_sets);
  json.Key("lb_prunes").Uint(log.lb_prunes);
  json.Key("nodes_expanded").Uint(log.nodes_expanded);
  json.Key("revert_refines").Uint(log.revert_refines);
  json.Key("abandoned_scans").Uint(log.abandoned_scans);
  json.Key("dropped_events").Uint(log.dropped_events);
  json.Key("events").BeginArray();
  for (const ExplainEvent& event : log.events) AppendEventJson(json, event);
  json.EndArray();
  json.Key("summary");
  AppendSummaryJson(json, Summarize(log));
  json.EndObject();
}

ExplainJsonlSink::ExplainJsonlSink(std::string path)
    : path_(std::move(path)) {}

ExplainJsonlSink::~ExplainJsonlSink() { Close(); }

void ExplainJsonlSink::Emit(const ExplainSearchLog& log) {
  JsonWriter json;
  AppendExplainSearchJson(json, log);

  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return;
  buffer_ += json.str();
  buffer_ += '\n';
}

bool ExplainJsonlSink::ok() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !failed_;
}

Status ExplainJsonlSink::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) {
    return failed_ ? Status::Internal("explain write to " + path_ + " failed")
                   : Status::OK();
  }
  closed_ = true;
  if (path_.empty() || path_ == "-") {
    std::fwrite(buffer_.data(), 1, buffer_.size(), stdout);
    return Status::OK();
  }
  std::FILE* f = std::fopen(path_.c_str(), "wb");
  if (f == nullptr) {
    failed_ = true;
    return Status::Internal("cannot open explain file " + path_);
  }
  std::size_t written = std::fwrite(buffer_.data(), 1, buffer_.size(), f);
  std::fclose(f);
  if (written != buffer_.size()) {
    failed_ = true;
    return Status::Internal("short write to explain file " + path_);
  }
  return Status::OK();
}

// ---------------------------------------------------------------------------
// ExplainRecorder
// ---------------------------------------------------------------------------

ExplainRecorder::ExplainRecorder(std::size_t recent_capacity,
                                 std::size_t slowest_capacity)
    : recent_capacity_(recent_capacity > 0 ? recent_capacity : 1),
      slowest_capacity_(slowest_capacity > 0 ? slowest_capacity : 1) {}

void ExplainRecorder::RecordSearch(const ExplainSearchLog& log) {
  ExplainSummary summary = Summarize(log);

  std::lock_guard<std::mutex> lock(mu_);
  ++searches_;
  events_ += summary.events;
  dropped_events_ += summary.dropped_events;
  abandoned_scans_ += summary.abandoned_scans;
  for (std::size_t a = 0; a < kExplainActionCount; ++a) {
    action_totals_[a] += summary.action_counts[a];
  }
  if (recent_.size() < recent_capacity_) {
    recent_.push_back(summary);
  } else {
    recent_[next_] = summary;
    next_ = (next_ + 1) % recent_capacity_;
  }
  // Slowest table: insert sorted by wall time, descending; ties keep the
  // earlier entry (stable for repeated scrapes).
  auto pos = std::upper_bound(
      slowest_.begin(), slowest_.end(), summary,
      [](const ExplainSummary& a, const ExplainSummary& b) {
        return a.wall_nanos > b.wall_nanos;
      });
  if (pos != slowest_.end() || slowest_.size() < slowest_capacity_) {
    slowest_.insert(pos, std::move(summary));
    if (slowest_.size() > slowest_capacity_) slowest_.pop_back();
  }
}

std::string ExplainRecorder::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  JsonWriter json;
  json.BeginObject();
  json.Key("schema_version").Int(1);
  json.Key("attached").Bool(true);
  json.Key("searches").Uint(searches_);
  json.Key("events").Uint(events_);
  json.Key("dropped_events").Uint(dropped_events_);
  json.Key("abandoned_scans").Uint(abandoned_scans_);
  json.Key("actions").BeginObject();
  for (ExplainAction action : kAllActions) {
    json.Key(ExplainActionName(action))
        .Uint(action_totals_[static_cast<std::size_t>(action)]);
  }
  json.EndObject();
  json.Key("recent").BeginArray();
  // Oldest first: the ring's oldest entry sits at next_.
  const std::size_t count = recent_.size();
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t idx =
        count < recent_capacity_ ? i : (next_ + i) % recent_capacity_;
    AppendRecorderEntryJson(json, recent_[idx]);
  }
  json.EndArray();
  json.Key("slowest").BeginArray();
  for (const ExplainSummary& summary : slowest_) {
    AppendRecorderEntryJson(json, summary);
  }
  json.EndArray();
  json.EndObject();
  return json.str();
}

void ExplainRecorder::Reset() {
  std::lock_guard<std::mutex> lock(mu_);
  searches_ = 0;
  events_ = 0;
  dropped_events_ = 0;
  abandoned_scans_ = 0;
  action_totals_.fill(0);
  recent_.clear();
  next_ = 0;
  slowest_.clear();
}

ExplainRecorder* GlobalExplainRecorder() {
  return g_explain_recorder.load(std::memory_order_acquire);
}

void AttachGlobalExplainRecorder(ExplainRecorder* recorder) {
  g_explain_recorder.store(recorder, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// Batch metrics
// ---------------------------------------------------------------------------

void FlushExplainMetrics(MetricsRegistry* metrics,
                         const std::vector<ExplainSearchLog>& logs) {
  if (metrics == nullptr || logs.empty()) return;
  std::uint64_t events = 0;
  std::uint64_t dropped = 0;
  std::uint64_t abandoned = 0;
  std::array<std::uint64_t, kExplainActionCount> actions{};
  for (const ExplainSearchLog& log : logs) {
    events += log.events.size();
    dropped += log.dropped_events;
    abandoned += log.abandoned_scans;
    for (const ExplainEvent& event : log.events) {
      ++actions[static_cast<std::size_t>(event.action)];
    }
  }
  if (Counter* c = metrics->GetCounter(
          "disc_explain_searches_total",
          "Searches whose decision log was recorded")) {
    c->Add(logs.size());
  }
  if (events > 0) {
    if (Counter* c = metrics->GetCounter("disc_explain_events_total",
                                         "Decision events recorded")) {
      c->Add(events);
    }
  }
  if (dropped > 0) {
    if (Counter* c = metrics->GetCounter(
            "disc_explain_events_dropped_total",
            "Decision events beyond the per-search cap (counted, not "
            "stored)")) {
      c->Add(dropped);
    }
  }
  if (abandoned > 0) {
    if (Counter* c = metrics->GetCounter(
            "disc_explain_abandoned_scans_total",
            "Bound scans cut short by the budget layer during explained "
            "searches")) {
      c->Add(abandoned);
    }
  }
  for (ExplainAction action : kAllActions) {
    const std::uint64_t n = actions[static_cast<std::size_t>(action)];
    if (n == 0) continue;
    if (Counter* c = metrics->GetCounter(
            std::string("disc_explain_action_") + ExplainActionName(action) +
            "_total")) {
      c->Add(n);
    }
  }
  if (Histogram* h = metrics->GetHistogram(
          "disc_save_bound_gap",
          {1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0},
          "Prop-5 minus Prop-3 bound gap per fully bounded search node")) {
    for (const ExplainSearchLog& log : logs) {
      for (const ExplainEvent& event : log.events) {
        const double gap = event.gap();
        if (std::isfinite(gap)) h->ObserveWithExemplar(gap, log.trace_id);
      }
    }
  }
}

}  // namespace disc
