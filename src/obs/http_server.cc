#include "obs/http_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/stringutil.h"

namespace disc {

namespace {

/// %XX and '+' decoding for query strings; invalid escapes pass through.
std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out += ' ';
    } else if (s[i] == '%' && i + 2 < s.size() &&
               std::isxdigit(static_cast<unsigned char>(s[i + 1])) &&
               std::isxdigit(static_cast<unsigned char>(s[i + 2]))) {
      const char hex[3] = {s[i + 1], s[i + 2], 0};
      out += static_cast<char>(std::strtol(hex, nullptr, 16));
      i += 2;
    } else {
      out += s[i];
    }
  }
  return out;
}

const char* StatusText(int status) {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 408: return "Request Timeout";
    case 414: return "URI Too Long";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Error";
  }
}

/// Sends the whole buffer, tolerating short writes. SIGPIPE suppressed per
/// call (MSG_NOSIGNAL) so a vanished client never kills the process.
void SendAll(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) return;  // timeout or peer gone; nothing to salvage
    sent += static_cast<std::size_t>(n);
  }
}

void WriteResponse(int fd, const HttpResponse& response, bool head_only) {
  std::string out = StrFormat("HTTP/1.1 %d %s\r\n", response.status,
                              StatusText(response.status));
  out += "Content-Type: " + response.content_type + "\r\n";
  out += StrFormat("Content-Length: %zu\r\n", response.body.size());
  out += "Connection: close\r\n\r\n";
  if (!head_only) out += response.body;
  SendAll(fd, out);
}

HttpResponse ErrorResponse(int status, const std::string& message) {
  return HttpResponse::Json(
      StrFormat("{\"error\":\"%s\",\"status\":%d}\n", message.c_str(), status),
      status);
}

}  // namespace

std::size_t HttpRequest::QueryUint(const std::string& key,
                                   std::size_t fallback) const {
  auto it = query.find(key);
  if (it == query.end() || it->second.empty()) return fallback;
  std::size_t value = 0;
  for (char c : it->second) {
    if (c < '0' || c > '9') return fallback;
    value = value * 10 + static_cast<std::size_t>(c - '0');
    if (value > 1000000) return fallback;  // sanity cap for an N-lines knob
  }
  return value;
}

HttpResponse HttpResponse::Json(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.content_type = "application/json; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpResponse HttpResponse::Text(std::string body, int status) {
  HttpResponse r;
  r.status = status;
  r.content_type = "text/plain; version=0.0.4; charset=utf-8";
  r.body = std::move(body);
  return r;
}

HttpServer::HttpServer(Options options) : options_(std::move(options)) {}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Handle(std::string path, HttpHandler handler) {
  handlers_[std::move(path)] = std::move(handler);
}

Status HttpServer::Start() {
  if (running_.load(std::memory_order_acquire)) {
    return Status::InvalidArgument("http server already started");
  }
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::InvalidArgument("bad bind address: " +
                                   options_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    Status status = Status::Internal(
        StrFormat("bind(%s:%u): %s", options_.bind_address.c_str(),
                  static_cast<unsigned>(options_.port),
                  std::strerror(errno)));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  if (::listen(listen_fd_, 64) != 0) {
    Status status =
        Status::Internal(std::string("listen(): ") + std::strerror(errno));
    ::close(listen_fd_);
    listen_fd_ = -1;
    return status;
  }
  sockaddr_in bound{};
  socklen_t bound_len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                    &bound_len) == 0) {
    port_ = ntohs(bound.sin_port);
  }

  workers_ = std::make_unique<ThreadPool>(
      std::max<std::size_t>(options_.worker_threads, 1),
      /*queue_capacity=*/128);
  stopping_.store(false, std::memory_order_release);
  running_.store(true, std::memory_order_release);
  listener_ = std::thread([this] { ListenLoop(); });
  DISC_LOG(INFO)
      .Str("bind", options_.bind_address)
      .Uint("port", port_)
      .Uint("workers", workers_->size())
      << "observability http server listening";
  return Status::OK();
}

void HttpServer::Stop() {
  if (!running_.exchange(false, std::memory_order_acq_rel)) return;
  stopping_.store(true, std::memory_order_release);
  if (listener_.joinable()) listener_.join();
  // Drain in-flight + queued connections before the socket closes: every
  // accepted client gets its response (graceful shutdown contract).
  workers_.reset();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  DISC_LOG(INFO).Uint("port", port_) << "observability http server stopped";
}

void HttpServer::ListenLoop() {
  FaultInjector::Site* fault_accept = FaultSiteFor("http.accept");
  while (!stopping_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    const int ready = ::poll(&pfd, 1, /*timeout_ms=*/250);
    if (ready <= 0) continue;  // tick (or EINTR): re-check the stop flag
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Fault site: an injected accept-path error drops the connection as a
    // transient accept failure would (client sees a reset, listener lives).
    if (fault_accept != nullptr && !fault_accept->Hit().ok()) {
      ::close(fd);
      continue;
    }
    timeval timeout{options_.io_timeout_seconds, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &timeout, sizeof(timeout));
    // Submit may block briefly when all workers are busy and the queue is
    // full — natural backpressure; the listener resumes accepting as soon
    // as a slot frees. Request metering happens post-parse in
    // ServeConnection, where the path label is known.
    workers_->Submit([this, fd] { ServeConnection(fd); });
  }
}

void HttpServer::ServeConnection(int fd) {
  FaultInjector::Site* fault_read = FaultSiteFor("http.read");
  std::string head;
  head.reserve(512);
  bool complete = false;
  bool timed_out = false;
  // The whole header phase shares one wall-clock budget: a slow-loris
  // client dripping one byte per recv resets the per-recv socket timeout
  // every time, so the bound must live above the recv loop.
  const auto read_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(options_.header_read_timeout_ms);
  while (head.size() < options_.max_request_bytes) {
    // Fault site: an injected error aborts the read like a reset; a
    // latency fault here consumes header budget, deterministically
    // driving the connection into the 408 path below.
    if (fault_read != nullptr && !fault_read->Hit().ok()) {
      ::close(fd);
      return;
    }
    const auto remaining =
        std::chrono::duration_cast<std::chrono::milliseconds>(
            read_deadline - std::chrono::steady_clock::now());
    if (remaining.count() <= 0) {
      timed_out = true;
      break;
    }
    pollfd pfd{fd, POLLIN, 0};
    const int ready =
        ::poll(&pfd, 1, static_cast<int>(remaining.count()));
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      timed_out = true;
      break;
    }
    char buf[1024];
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // timeout, reset, or EOF before end of headers
    head.append(buf, static_cast<std::size_t>(n));
    if (head.find("\r\n\r\n") != std::string::npos ||
        head.find("\n\n") != std::string::npos) {
      complete = true;
      break;
    }
  }

  HttpResponse response;
  bool head_only = false;
  std::string path_label = "other";
  if (!complete) {
    if (timed_out) {
      response = ErrorResponse(408, "request header read timed out");
    } else if (head.empty()) {
      ::close(fd);
      return;  // client connected and went away; nothing to answer
    } else {
      // Oversized request: 414 when even the request line never ended,
      // 431 when the line was fine but the header block overflowed the cap.
      response = head.find('\n') == std::string::npos
                     ? ErrorResponse(414, "request line too long")
                     : ErrorResponse(431, "request headers too large");
    }
  } else {
    const std::size_t line_end = head.find("\r\n");
    const std::string request_line =
        head.substr(0, line_end == std::string::npos ? head.find('\n')
                                                     : line_end);
    HttpRequest request;
    {
      const std::size_t sp1 = request_line.find(' ');
      const std::size_t sp2 =
          sp1 == std::string::npos ? std::string::npos
                                   : request_line.find(' ', sp1 + 1);
      if (sp2 != std::string::npos) {
        request.method = request_line.substr(0, sp1);
        std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
        const std::size_t qmark = target.find('?');
        request.path = UrlDecode(target.substr(0, qmark));
        if (qmark != std::string::npos) {
          for (const std::string& pair :
               Split(target.substr(qmark + 1), '&')) {
            const std::size_t eq = pair.find('=');
            if (eq == std::string::npos) {
              request.query[UrlDecode(pair)] = "";
            } else {
              request.query[UrlDecode(pair.substr(0, eq))] =
                  UrlDecode(pair.substr(eq + 1));
            }
          }
        }
      }
    }

    if (request.method.empty() || request.path.empty()) {
      response = ErrorResponse(400, "malformed request line");
    } else if (request.method != "GET" && request.method != "HEAD") {
      response = ErrorResponse(405, "only GET is supported");
    } else {
      head_only = request.method == "HEAD";
      auto it = handlers_.find(request.path);
      if (it == handlers_.end()) {
        response = ErrorResponse(404, "no such endpoint");
      } else {
        path_label = request.path;  // registered route: bounded label set
        response = it->second(request);
      }
    }
  }

  // Path-labeled traffic counters. The label set is bounded by design:
  // only registered routes get their own series; everything else —
  // unknown paths, malformed or timed-out requests — pools under "other",
  // so a URL-scanning client cannot mint unbounded series.
  if (MetricsRegistry* registry = GlobalMetrics()) {
    const std::string suffix =
        "{path=\"" + PromEscapeLabelValue(path_label) + "\"}";
    if (Counter* requests = registry->GetCounter(
            "disc_http_requests_total" + suffix,
            "HTTP requests served by the observability server, by route")) {
      requests->Add(1);
    }
    if (response.status >= 400) {
      if (Counter* errors = registry->GetCounter(
              "disc_http_errors_total" + suffix,
              "HTTP responses with status >= 400, by route")) {
        errors->Add(1);
      }
    }
  }
  WriteResponse(fd, response, head_only);
  ::close(fd);
}

}  // namespace disc
