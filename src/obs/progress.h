#ifndef DISC_OBS_PROGRESS_H_
#define DISC_OBS_PROGRESS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/deadline.h"
#include "core/search_budget.h"

namespace disc {

class JsonWriter;

/// Live view of one in-flight save batch (DESIGN.md §8, "Live observability
/// plane"). DiscSaver::SaveAll / the exact path of SaveOutliers register a
/// tracker with the global ProgressRegistry when one is attached; worker
/// threads record each finished outlier; `/statusz` snapshots the tracker
/// while the batch runs.
///
/// Write path (RecordOutlier) follows the per-thread shard pattern of
/// common/metrics: each worker bumps relaxed atomics on its own
/// cache-line-padded shard and publishes one wall-time sample into a
/// fixed-capacity ring — no lock, no allocation, one call per *outlier*
/// (never per search node), so tracking adds nothing measurable to the
/// columnar save path and cannot perturb result determinism.
///
/// Read path (Snap) sums the shards with acquire loads and copies the
/// sample ring; like a live Counter it is a monotone lower bound that
/// becomes exact once the batch joins its workers.
class BatchProgressTracker {
 public:
  /// `label` names the batch on /statusz ("save_all", "save_exact"),
  /// `total` is the number of outliers queued, `deadline` the batch
  /// deadline (infinite when the batch is unbudgeted).
  BatchProgressTracker(std::uint64_t id, std::string label, std::size_t total,
                       Deadline deadline);

  /// Records one finished (or drained-and-skipped) outlier. Thread-safe,
  /// lock-free: two relaxed fetch_adds plus one relaxed store.
  /// `wall_nanos` is the search wall time (0 for skipped outliers — those
  /// are excluded from the percentile samples but counted as degraded).
  void RecordOutlier(SaveTermination termination, std::uint64_t wall_nanos);

  /// Records one retry attempt of a transient-failed search (SaveAll's
  /// RetryPolicy). Thread-safe, lock-free.
  void RecordRetry();

  /// Records one outlier restored from a SaveJournal instead of searched.
  /// Counts toward `completed` (its recorded verdict was definitive) and
  /// toward `resumed`; contributes no wall-time sample.
  void RecordResumed(SaveTermination termination);

  /// Marks the batch finished (workers joined; counts are final).
  void MarkDone();

  /// Point-in-time view, safe to take from any thread at any moment.
  struct Snapshot {
    std::uint64_t id = 0;
    std::string label;
    std::size_t total = 0;
    /// Searches that ran to their definitive verdict (kCompleted or
    /// kInfeasible — the search itself finished, whatever the answer).
    std::size_t completed = 0;
    /// Truncated searches: deadline / cancellation / visit / query budget.
    std::size_t degraded = 0;
    /// Definitive kInfeasible verdicts (a subset of `completed`).
    std::size_t infeasible = 0;
    /// completed + degraded (== total once the batch is done).
    std::size_t finished = 0;
    /// total − finished: outliers still queued or in flight on the pool —
    /// the live queue-depth view of the batch.
    std::size_t queued = 0;
    /// Retry attempts spent on transient failures (RetryPolicy).
    std::size_t retries = 0;
    /// Outliers restored from a SaveJournal (a subset of `completed`).
    std::size_t resumed = 0;
    bool done = false;
    double elapsed_seconds = 0;
    bool has_deadline = false;
    /// Batch wall clock left, clamped at 0 (0 when expired or no deadline).
    double deadline_slack_seconds = 0;
    /// Percentiles over the recorded per-search wall times (0 when no
    /// samples yet). Computed from the newest kSampleCapacity samples.
    double p50_wall_seconds = 0;
    double p99_wall_seconds = 0;
    std::size_t wall_samples = 0;

    /// Appends this snapshot as one JSON object (schemas/statusz.schema.json,
    /// "batches" items).
    void AppendJson(JsonWriter* json) const;
  };
  Snapshot Snap() const;

  std::uint64_t id() const { return id_; }
  bool done() const { return done_.load(std::memory_order_acquire); }

  /// Newest per-search wall-time samples retained for the percentiles.
  static constexpr std::size_t kSampleCapacity = 1024;

 private:
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> degraded{0};
    std::atomic<std::uint64_t> infeasible{0};
    std::atomic<std::uint64_t> retries{0};
    std::atomic<std::uint64_t> resumed{0};
  };

  const std::uint64_t id_;
  const std::string label_;
  const std::size_t total_;
  const Deadline deadline_;
  const std::uint64_t start_ns_;
  std::atomic<bool> done_{false};
  std::array<Shard, kShards> shards_;
  /// Wall-time sample ring: writers claim a slot with one fetch_add and
  /// store their sample; the newest kSampleCapacity samples win. A slot
  /// being rewritten while Snap copies it yields one stale-vs-fresh sample
  /// — harmless for a percentile estimate, and exact after MarkDone.
  std::atomic<std::uint64_t> sample_count_{0};
  std::array<std::atomic<std::uint64_t>, kSampleCapacity> samples_{};
};

/// Process-wide registry of in-flight (and recently finished) batches.
/// Registration is once per batch under a mutex; everything per-outlier
/// stays on the tracker's lock-free path. Finished batches are retained
/// (newest kFinishedRetention) so /statusz can show what just ran.
class ProgressRegistry {
 public:
  ProgressRegistry() = default;
  ProgressRegistry(const ProgressRegistry&) = delete;
  ProgressRegistry& operator=(const ProgressRegistry&) = delete;

  /// Registers a new batch and returns its tracker (shared: the registry
  /// retains it for /statusz after the batch object goes out of scope).
  std::shared_ptr<BatchProgressTracker> StartBatch(std::string label,
                                                   std::size_t total,
                                                   Deadline deadline);

  /// Snapshots of every retained batch, oldest first.
  std::vector<BatchProgressTracker::Snapshot> Snapshots() const;

  /// Batches started since construction.
  std::uint64_t batches_started() const {
    return next_id_.load(std::memory_order_acquire) - 1;
  }

  /// How many finished batches are kept visible on /statusz.
  static constexpr std::size_t kFinishedRetention = 8;

 private:
  mutable std::mutex mu_;
  std::atomic<std::uint64_t> next_id_{1};
  std::vector<std::shared_ptr<BatchProgressTracker>> batches_;
};

/// The process-global registry, null until attached (same contract as
/// GlobalMetrics: null means tracking disabled and every registration site
/// a guarded no-op; attach once at startup before spawning workers).
ProgressRegistry* GlobalProgress();
void AttachGlobalProgress(ProgressRegistry* registry);

}  // namespace disc

#endif  // DISC_OBS_PROGRESS_H_
