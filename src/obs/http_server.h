#ifndef DISC_OBS_HTTP_SERVER_H_
#define DISC_OBS_HTTP_SERVER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "common/thread_pool.h"

namespace disc {

/// One parsed request. Only what the observability endpoints need: method,
/// decoded path, and the query parameters (`/statusz?logs=50`).
struct HttpRequest {
  std::string method;
  std::string path;                          ///< target up to '?'
  std::map<std::string, std::string> query;  ///< decoded key → value

  /// Query parameter as a non-negative integer, or `fallback` when absent
  /// or malformed.
  std::size_t QueryUint(const std::string& key, std::size_t fallback) const;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;

  static HttpResponse Json(std::string body, int status = 200);
  static HttpResponse Text(std::string body, int status = 200);
};

using HttpHandler = std::function<HttpResponse(const HttpRequest&)>;

/// Small, dependency-free HTTP/1.1 exposition server (DESIGN.md §8).
///
/// Scope: GET/HEAD on exact paths, `Connection: close`, bodies built in
/// memory — exactly what a Prometheus scrape or a `curl` health probe
/// needs, and nothing a production ingress would want beyond that. Not a
/// general web server; keep it off the open internet (binds 127.0.0.1 by
/// default).
///
/// Threading model: one listener thread polls the listening socket (250 ms
/// tick so Stop() is prompt) and hands each accepted connection to a small
/// bounded ThreadPool (`common/thread_pool`) — a slow or malicious client
/// stalls one worker, never the listener or the process. Handlers run on
/// worker threads concurrently with the save pipeline, so everything they
/// touch must be thread-safe (the metrics registry, the progress registry
/// and the log ring all are, by construction).
///
/// Shutdown ordering (mirrored in disc_cli's signal path): Stop() flips the
/// flag, joins the listener (no new connections), then drains the worker
/// pool (in-flight responses finish), then closes the listening socket.
/// Stop() is idempotent; the destructor calls it.
class HttpServer {
 public:
  struct Options {
    /// Interface to bind. Loopback by default: the exposition plane is for
    /// sidecar scrapers and operators on the host, not the open network.
    std::string bind_address = "127.0.0.1";
    /// TCP port; 0 picks an ephemeral port (see port()).
    std::uint16_t port = 0;
    /// Worker threads answering requests.
    std::size_t worker_threads = 2;
    /// Cap on the request head (request line + headers). Longer requests
    /// are answered 414 (request line) / 431 (headers) and closed.
    std::size_t max_request_bytes = 8192;
    /// Per-connection socket read/write timeout.
    int io_timeout_seconds = 5;
    /// Wall-clock budget for reading the whole request head. A client that
    /// trickles bytes slower than this (slow loris) is answered 408 and
    /// closed — each drip resets a plain recv timeout, so the per-recv
    /// `io_timeout_seconds` alone cannot bound the header phase.
    int header_read_timeout_ms = 2000;
  };

  explicit HttpServer(Options options);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Registers `handler` for exact-match `path`. Must be called before
  /// Start(); handlers must be thread-safe.
  void Handle(std::string path, HttpHandler handler);

  /// Binds, listens and starts the listener thread + worker pool.
  Status Start();

  /// Graceful stop (see class comment). Idempotent, callable from any
  /// thread except a handler's own worker.
  void Stop();

  /// The bound port (resolves port 0 after Start()).
  std::uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }

 private:
  void ListenLoop();
  void ServeConnection(int fd);

  Options options_;
  std::map<std::string, HttpHandler> handlers_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread listener_;
  std::unique_ptr<ThreadPool> workers_;
};

}  // namespace disc

#endif  // DISC_OBS_HTTP_SERVER_H_
