#ifndef DISC_OBS_EXPLAIN_H_
#define DISC_OBS_EXPLAIN_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"

namespace disc {

class JsonWriter;
class MetricsRegistry;

// ---------------------------------------------------------------------------
// Decision events — what the branch-and-bound search did, per node
// ---------------------------------------------------------------------------

/// What the search decided at one point of its walk (DESIGN.md §14). The
/// first six actions partition the fate of a branch-and-bound node; the
/// seventh marks one successful post-search revert. Values are part of the
/// serialized contract (schemas/explain.schema.json).
enum class ExplainAction : std::uint8_t {
  /// The node was fully evaluated (both bounds) and neither pruned nor
  /// improved the incumbent; its children were explored.
  kExpand = 0,
  /// The Proposition-3 lower bound met or beat the incumbent — the whole
  /// subtree under X was cut.
  kPruneLb,
  /// The budget layer stopped the search at this node (deadline,
  /// cancellation, visit/query budget, or an injected fault).
  kPruneBudget,
  /// The lower bound proved no feasible adjustment keeps X fixed (< η−1
  /// reachable qualifiers); the subtree is cut as infeasible.
  kInfeasible,
  /// The Proposition-5 splice at X beat the incumbent and was adopted.
  kIncumbentUpdate,
  /// X was already processed — deduplicated by the visited-set memo table
  /// (§3.3.1) before any bound work.
  kMemoHit,
  /// RevertRefine restored one adjusted attribute to its original value
  /// (the adjustment stayed feasible and got strictly cheaper).
  kRevertRefine,
};
inline constexpr std::size_t kExplainActionCount = 7;

/// Lower-case identifier for JSON/metrics ("expand", "prune_lb", ...).
const char* ExplainActionName(ExplainAction action);

/// Sentinel for "no donor row" on events without a Proposition-5 splice.
inline constexpr std::uint64_t kExplainNoDonor =
    std::numeric_limits<std::uint64_t>::max();

/// One decision of one search. Numeric fields default to quiet NaN /
/// infinity sentinels meaning "not computed at this event"; serialization
/// omits non-finite values. Per action:
///   expand / incumbent_update / prune_budget — `lb` and `ub` hold whatever
///     bounds were computed before the decision; `donor_row` names the
///     Proposition-5 splice donor when an upper bound exists.
///   prune_lb / infeasible — `lb` is the pruning bound (infinite for
///     infeasible).
///   memo_hit — only `x_bits` and the incumbent are meaningful.
///   revert_refine — `x_bits` is the single reverted attribute (as a
///     one-bit mask) and `ub` the adjustment cost after the revert.
struct ExplainEvent {
  /// AttributeSet::bits() of the node's unadjusted set X.
  std::uint64_t x_bits = 0;
  ExplainAction action = ExplainAction::kExpand;
  /// True only for the X = ∅ global seed splice recorded before the search
  /// walk starts — it is an incumbent update but not a visited node, so
  /// node-count cross-checks must exclude it.
  bool seed = false;
  /// Proposition-3 lower bound for X (NaN = not computed, +inf =
  /// infeasible).
  double lb = std::numeric_limits<double>::quiet_NaN();
  /// Proposition-5 upper bound (splice cost) for X (NaN = none).
  double ub = std::numeric_limits<double>::quiet_NaN();
  /// Incumbent cost *after* this event (+inf = no incumbent yet).
  double incumbent = std::numeric_limits<double>::infinity();
  /// Donor row of the Proposition-5 splice behind `ub`.
  std::uint64_t donor_row = kExplainNoDonor;

  /// Bound gap ub − lb when both bounds are finite, NaN otherwise.
  double gap() const;
};

/// Hard cap on recorded events per search. A pathological search (huge m,
/// pruning disabled) could otherwise grow the log without bound; beyond the
/// cap events are counted in `dropped_events` instead of stored. The cap is
/// a count, never a time or memory heuristic, so the recorded prefix stays
/// bit-identical across thread counts.
inline constexpr std::size_t kExplainMaxEventsPerSearch = 65536;

// ---------------------------------------------------------------------------
// SearchExplain — per-search capture context riding on the BudgetGauge
// ---------------------------------------------------------------------------

/// Decision-capture context of one search. Like SearchTrace it rides on the
/// BudgetGauge (which already flows DiscSaver → BoundsEngine → index
/// queries), is owned by exactly one thread, and is null on the gauge when
/// explain is detached — every capture site is then a single pointer check.
struct SearchExplain {
  std::vector<ExplainEvent> events;
  /// Events beyond kExplainMaxEventsPerSearch (counted, not stored).
  std::uint64_t dropped_events = 0;
  /// Bound scans cut short by the budget layer (the scan returned its safe
  /// uninformative value). Recorded by BoundsEngine; a high count flags
  /// bound-quality data polluted by truncation.
  std::uint64_t abandoned_scans = 0;

  void Record(const ExplainEvent& event) {
    if (events.size() >= kExplainMaxEventsPerSearch) {
      ++dropped_events;
      return;
    }
    events.push_back(event);
  }
  void NoteAbandonedScan() { ++abandoned_scans; }
};

// ---------------------------------------------------------------------------
// ExplainSearchLog — the finished per-search decision log
// ---------------------------------------------------------------------------

/// The decision log of one finished search, assembled by the batch driver
/// from the final attempt's SearchExplain plus the search verdict. This is
/// the unit emitted to sinks (one JSONL line) and fed to the recorder.
struct ExplainSearchLog {
  /// Input position of the outlier in its batch — the deterministic
  /// identity of the log (matches the trace "ordinal" attribute).
  std::uint64_t ordinal = 0;
  /// Trace id of the same save (0 when ids were never derived); links the
  /// log to spans and exemplars.
  std::uint64_t trace_id = 0;
  /// Final attempt number under SaveAll's RetryPolicy (1 = no retries).
  /// The events below describe only that final attempt.
  std::uint64_t attempt = 1;
  /// "disc" (branch-and-bound) or "exact" (domain enumeration). Node-count
  /// cross-checks apply only to "disc" — the exact path records incumbent
  /// updates and budget stops, not per-candidate events.
  std::string algo = "disc";
  /// SaveTerminationName of how the search ended.
  std::string termination = "completed";
  bool feasible = false;
  /// Final adjustment cost (NaN when infeasible).
  double final_cost = std::numeric_limits<double>::quiet_NaN();
  /// Lemma-2 global lower bound (0 when uninformative); with `final_cost`
  /// this certifies the approximation ratio.
  double global_lb = 0;
  /// Wall clock of the search (nondeterministic — excluded from the
  /// cross-thread parity contract, like SearchStats::wall_nanos).
  std::uint64_t wall_nanos = 0;
  /// Mirrors of the search's SearchStats counters used by the analyzer's
  /// cross-checks: every log must satisfy
  ///   count(prune_lb) + count(infeasible) == lb_prunes, and (disc only)
  ///   count(non-seed, non-memo node events) == visited_sets — a memo_hit
  ///   is a revisit of a set the memo already counted, and
  ///   count(revert_refine) == revert_refines.
  std::uint64_t visited_sets = 0;
  std::uint64_t lb_prunes = 0;
  std::uint64_t nodes_expanded = 0;
  std::uint64_t revert_refines = 0;
  std::uint64_t abandoned_scans = 0;
  std::uint64_t dropped_events = 0;
  std::vector<ExplainEvent> events;
};

// ---------------------------------------------------------------------------
// ExplainSummary — derived per-search analytics
// ---------------------------------------------------------------------------

/// One incumbent adoption on the search timeline.
struct ExplainIncumbentStep {
  std::uint64_t event_index = 0;  ///< position in the event log
  std::uint64_t depth = 0;        ///< |X| of the adopting node
  double cost = 0;                ///< incumbent cost after adoption
};

/// Derived analytics of one ExplainSearchLog: prune-reason breakdown, the
/// incumbent-evolution timeline, and bound-tightness ratios against the
/// final cost (the "opt" the search settled on). Ratios are NaN when
/// undefined (no feasible answer, zero cost, or no finite bound).
struct ExplainSummary {
  std::uint64_t ordinal = 0;
  std::uint64_t trace_id = 0;
  std::string algo = "disc";
  std::string termination = "completed";
  bool feasible = false;
  double final_cost = std::numeric_limits<double>::quiet_NaN();
  std::uint64_t wall_nanos = 0;
  std::uint64_t events = 0;
  std::uint64_t dropped_events = 0;
  std::uint64_t abandoned_scans = 0;
  /// Per-action event counts, indexed by ExplainAction.
  std::array<std::uint64_t, kExplainActionCount> action_counts{};
  /// |X| of the event that produced the first incumbent (including the
  /// seed, whose depth is 0); -1 when the search never found one.
  std::int64_t first_feasible_depth = -1;
  /// Incumbent-evolution timeline, oldest first (capped — see
  /// kExplainTimelineCap — keeping the earliest adoptions plus the final
  /// one).
  std::vector<ExplainIncumbentStep> timeline;
  /// max over finite Prop-3 bounds of lb / final_cost — how close the best
  /// lower bound came to the answer (≤ 1 up to float rounding).
  double max_lb_over_cost = std::numeric_limits<double>::quiet_NaN();
  /// First finite Prop-5 bound / final_cost — how loose the first feasible
  /// splice was (≥ 1).
  double first_ub_over_cost = std::numeric_limits<double>::quiet_NaN();
  /// Bound-gap (ub − lb) statistics over events carrying both bounds.
  std::uint64_t gap_events = 0;
  double min_gap = std::numeric_limits<double>::quiet_NaN();
  double mean_gap = std::numeric_limits<double>::quiet_NaN();
};

/// Timeline entries kept per summary (earliest adoptions + the final one).
inline constexpr std::size_t kExplainTimelineCap = 32;

/// Derives the analytics of one log. Pure; deterministic for a fixed log.
ExplainSummary Summarize(const ExplainSearchLog& log);

// ---------------------------------------------------------------------------
// ExplainCollector — per-worker lock-free log buffers for one batch
// ---------------------------------------------------------------------------

/// Per-batch log buffer with the SpanCollector discipline: one cache-line-
/// padded slot per pool worker plus one for the caller, plain vector pushes
/// on the hot path, Drain() only after the batch joins. Drained logs come
/// back sorted by (ordinal, attempt), so sink emission order is
/// deterministic regardless of worker scheduling.
class ExplainCollector {
 public:
  /// `slots` buffers; use pool->size() + 1 (workers + caller).
  explicit ExplainCollector(std::size_t slots);

  /// Appends `log` to buffer `slot`. Each slot must only ever be written by
  /// one thread at a time (worker w → slot w, non-workers → last slot).
  void Record(std::size_t slot, ExplainSearchLog log);

  /// Moves every recorded log out, sorted by (ordinal, attempt). Call only
  /// when no Record() can be in flight.
  std::vector<ExplainSearchLog> Drain();

  std::size_t slots() const { return slots_.size(); }

 private:
  struct alignas(64) Slot {
    std::vector<ExplainSearchLog> logs;
  };
  std::vector<Slot> slots_;
};

// ---------------------------------------------------------------------------
// Sinks
// ---------------------------------------------------------------------------

/// Consumer of finished decision logs. Emit() must accept calls from any
/// thread (the exact path emits from the merge loop; the DISC path emits
/// from the batch-end drain).
class ExplainSink {
 public:
  virtual ~ExplainSink() = default;
  virtual void Emit(const ExplainSearchLog& log) = 0;
};

/// Serializes one log as a JSON object (the JSONL line format of
/// schemas/explain.schema.json): verdict fields, the event array, and the
/// derived summary. Non-finite numbers are omitted rather than emitted.
void AppendExplainSearchJson(JsonWriter& json, const ExplainSearchLog& log);

/// JSON-Lines file sink behind `disc_cli --explain=PATH`: one object per
/// search. Lines are buffered and flushed on Close()/destruction; check
/// ok()/Close() for I/O errors (explain is best-effort — a failed write
/// never fails a save). An empty path or "-" flushes to stdout instead of
/// a file (the `--explain` no-argument form).
class ExplainJsonlSink : public ExplainSink {
 public:
  explicit ExplainJsonlSink(std::string path);
  ~ExplainJsonlSink() override;

  void Emit(const ExplainSearchLog& log) override;

  /// True when the file opened and every write so far succeeded.
  bool ok() const;
  /// Flushes and closes; returns the first I/O error, if any. Idempotent.
  Status Close();

 private:
  mutable std::mutex mu_;
  std::string path_;
  std::string buffer_;
  bool failed_ = false;
  bool closed_ = false;
};

// ---------------------------------------------------------------------------
// ExplainRecorder — live decision summaries for /explainz
// ---------------------------------------------------------------------------

/// In-memory recorder behind /explainz: batch-cumulative action totals, a
/// ring of the most recent search summaries, and the slowest searches seen
/// (by wall time). Mutex-guarded — it is fed once per *search* from the
/// batch-end drain, never from a hot path. Reset() is lossless for the
/// totals in the same sense as WallPhaseProfiler::Reset: it zeroes the
/// window under the same lock that RecordSearch takes, so a concurrent
/// scrape sees either the old window or the new one, never a torn mix.
class ExplainRecorder {
 public:
  explicit ExplainRecorder(std::size_t recent_capacity = 64,
                           std::size_t slowest_capacity = 8);

  /// Folds one finished search into the totals, the recent ring and the
  /// slowest table. Any thread.
  void RecordSearch(const ExplainSearchLog& log);

  /// The /explainz payload: schema_version, window totals (searches,
  /// events, per-action counts), recent summaries (newest last) and the
  /// slowest searches (slowest first).
  std::string ToJson() const;

  /// Starts a fresh window: zeroes totals, clears recent + slowest.
  void Reset();

 private:
  const std::size_t recent_capacity_;
  const std::size_t slowest_capacity_;
  mutable std::mutex mu_;
  std::uint64_t searches_ = 0;
  std::uint64_t events_ = 0;
  std::uint64_t dropped_events_ = 0;
  std::uint64_t abandoned_scans_ = 0;
  std::array<std::uint64_t, kExplainActionCount> action_totals_{};
  std::vector<ExplainSummary> recent_;  ///< ring, `next_` is the oldest
  std::size_t next_ = 0;
  std::vector<ExplainSummary> slowest_;  ///< sorted by wall time, desc
};

/// Process-global recorder hook (mirrors GlobalMetrics /
/// GlobalTraceRecorder); null = detached. When attached, SaveAll records
/// decision logs even without an ExplainSink, so /explainz works in serve
/// mode without a JSONL file.
ExplainRecorder* GlobalExplainRecorder();
void AttachGlobalExplainRecorder(ExplainRecorder* recorder);

// ---------------------------------------------------------------------------
// Batch metrics
// ---------------------------------------------------------------------------

/// Once-per-batch flush of decision-log aggregates into the registry:
/// disc_explain_searches_total, disc_explain_events_total,
/// disc_explain_events_dropped_total, disc_explain_abandoned_scans_total,
/// disc_explain_action_<action>_total, and the disc_save_bound_gap
/// histogram (one observation per event carrying both bounds, with the
/// search's trace id as exemplar). Null registry or empty logs = no-op.
void FlushExplainMetrics(MetricsRegistry* metrics,
                         const std::vector<ExplainSearchLog>& logs);

}  // namespace disc

#endif  // DISC_OBS_EXPLAIN_H_
