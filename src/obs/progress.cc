#include "obs/progress.h"

#include <algorithm>
#include <thread>
#include <vector>

#include "common/json_writer.h"
#include "common/trace.h"

namespace disc {

namespace {

std::atomic<ProgressRegistry*> g_global_progress{nullptr};

std::size_t ThisThreadShard(std::size_t shard_count) {
  static thread_local const std::size_t hash =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return hash % shard_count;
}

/// Nearest-rank percentile over an ascending-sorted sample vector.
double Percentile(const std::vector<std::uint64_t>& sorted, double q) {
  if (sorted.empty()) return 0;
  const auto rank = static_cast<std::size_t>(
      q * static_cast<double>(sorted.size() - 1) + 0.5);
  return static_cast<double>(sorted[std::min(rank, sorted.size() - 1)]) * 1e-9;
}

}  // namespace

BatchProgressTracker::BatchProgressTracker(std::uint64_t id, std::string label,
                                           std::size_t total,
                                           Deadline deadline)
    : id_(id),
      label_(std::move(label)),
      total_(total),
      deadline_(deadline),
      start_ns_(TraceNowNs()) {}

void BatchProgressTracker::RecordOutlier(SaveTermination termination,
                                         std::uint64_t wall_nanos) {
  Shard& shard = shards_[ThisThreadShard(kShards)];
  switch (termination) {
    case SaveTermination::kCompleted:
      shard.completed.fetch_add(1, std::memory_order_relaxed);
      break;
    case SaveTermination::kInfeasible:
      shard.completed.fetch_add(1, std::memory_order_relaxed);
      shard.infeasible.fetch_add(1, std::memory_order_relaxed);
      break;
    case SaveTermination::kVisitBudget:
    case SaveTermination::kQueryBudget:
    case SaveTermination::kDeadline:
    case SaveTermination::kCancelled:
    case SaveTermination::kFault:
      shard.degraded.fetch_add(1, std::memory_order_relaxed);
      break;
  }
  if (wall_nanos > 0) {
    const std::uint64_t slot =
        sample_count_.fetch_add(1, std::memory_order_relaxed) %
        kSampleCapacity;
    samples_[slot].store(wall_nanos, std::memory_order_relaxed);
  }
}

void BatchProgressTracker::RecordRetry() {
  shards_[ThisThreadShard(kShards)].retries.fetch_add(
      1, std::memory_order_relaxed);
}

void BatchProgressTracker::RecordResumed(SaveTermination termination) {
  Shard& shard = shards_[ThisThreadShard(kShards)];
  shard.completed.fetch_add(1, std::memory_order_relaxed);
  if (termination == SaveTermination::kInfeasible) {
    shard.infeasible.fetch_add(1, std::memory_order_relaxed);
  }
  shard.resumed.fetch_add(1, std::memory_order_relaxed);
}

void BatchProgressTracker::MarkDone() {
  done_.store(true, std::memory_order_release);
}

BatchProgressTracker::Snapshot BatchProgressTracker::Snap() const {
  Snapshot snap;
  snap.id = id_;
  snap.label = label_;
  snap.total = total_;
  for (const Shard& s : shards_) {
    snap.completed += s.completed.load(std::memory_order_acquire);
    snap.degraded += s.degraded.load(std::memory_order_acquire);
    snap.infeasible += s.infeasible.load(std::memory_order_acquire);
    snap.retries += s.retries.load(std::memory_order_acquire);
    snap.resumed += s.resumed.load(std::memory_order_acquire);
  }
  snap.finished = snap.completed + snap.degraded;
  snap.queued = snap.finished < snap.total ? snap.total - snap.finished : 0;
  snap.done = done();
  snap.elapsed_seconds =
      static_cast<double>(TraceNowNs() - start_ns_) * 1e-9;
  snap.has_deadline = !deadline_.is_infinite();
  if (snap.has_deadline) {
    snap.deadline_slack_seconds =
        std::chrono::duration_cast<std::chrono::duration<double>>(
            deadline_.remaining())
            .count();
  }
  const std::uint64_t count = sample_count_.load(std::memory_order_acquire);
  const std::size_t n =
      static_cast<std::size_t>(std::min<std::uint64_t>(count, kSampleCapacity));
  if (n > 0) {
    std::vector<std::uint64_t> sorted;
    sorted.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint64_t v = samples_[i].load(std::memory_order_acquire);
      if (v > 0) sorted.push_back(v);
    }
    std::sort(sorted.begin(), sorted.end());
    snap.wall_samples = sorted.size();
    snap.p50_wall_seconds = Percentile(sorted, 0.50);
    snap.p99_wall_seconds = Percentile(sorted, 0.99);
  }
  return snap;
}

void BatchProgressTracker::Snapshot::AppendJson(JsonWriter* json) const {
  json->BeginObject();
  json->Key("id").Uint(id);
  json->Key("label").String(label);
  json->Key("total").Uint(total);
  json->Key("completed").Uint(completed);
  json->Key("degraded").Uint(degraded);
  json->Key("infeasible").Uint(infeasible);
  json->Key("finished").Uint(finished);
  json->Key("queued").Uint(queued);
  json->Key("retries").Uint(retries);
  json->Key("resumed").Uint(resumed);
  json->Key("done").Bool(done);
  json->Key("elapsed_seconds").Number(elapsed_seconds);
  json->Key("has_deadline").Bool(has_deadline);
  json->Key("deadline_slack_seconds").Number(deadline_slack_seconds);
  json->Key("p50_wall_seconds").Number(p50_wall_seconds);
  json->Key("p99_wall_seconds").Number(p99_wall_seconds);
  json->Key("wall_samples").Uint(wall_samples);
  json->EndObject();
}

std::shared_ptr<BatchProgressTracker> ProgressRegistry::StartBatch(
    std::string label, std::size_t total, Deadline deadline) {
  const std::uint64_t id = next_id_.fetch_add(1, std::memory_order_acq_rel);
  auto tracker = std::make_shared<BatchProgressTracker>(id, std::move(label),
                                                        total, deadline);
  std::lock_guard<std::mutex> lock(mu_);
  // Evict the oldest *finished* batches beyond the retention window;
  // in-flight trackers are never evicted (a scrape must always see them).
  std::size_t finished = 0;
  for (const auto& b : batches_) {
    if (b->done()) ++finished;
  }
  for (auto it = batches_.begin();
       finished >= kFinishedRetention && it != batches_.end();) {
    if ((*it)->done()) {
      it = batches_.erase(it);
      --finished;
    } else {
      ++it;
    }
  }
  batches_.push_back(tracker);
  return tracker;
}

std::vector<BatchProgressTracker::Snapshot> ProgressRegistry::Snapshots()
    const {
  std::vector<std::shared_ptr<BatchProgressTracker>> batches;
  {
    std::lock_guard<std::mutex> lock(mu_);
    batches = batches_;
  }
  std::vector<BatchProgressTracker::Snapshot> out;
  out.reserve(batches.size());
  for (const auto& b : batches) out.push_back(b->Snap());
  return out;
}

ProgressRegistry* GlobalProgress() {
  return g_global_progress.load(std::memory_order_acquire);
}

void AttachGlobalProgress(ProgressRegistry* registry) {
  g_global_progress.store(registry, std::memory_order_release);
}

}  // namespace disc
