#ifndef DISC_OBS_ENDPOINTS_H_
#define DISC_OBS_ENDPOINTS_H_

#include "obs/http_server.h"

namespace disc {

/// Registers the observability endpoints on `server` (call before
/// Start()):
///
///   GET /metrics       Prometheus text 0.0.4 from the global registry
///   GET /metrics.json  JSON exposition (schemas/metrics.schema.json)
///   GET /tracez        recent slow + currently active search spans
///                      (schemas/tracez.schema.json)
///   GET /profilez      wall-phase profile as folded-stack flamegraph JSON
///                      (schemas/profilez.schema.json); `?reset=1` returns
///                      the window and starts a fresh one
///   GET /healthz       liveness + build info (version, uptime, pid)
///   GET /statusz       live snapshot of in-flight save batches
///                      (schemas/statusz.schema.json); `?logs=N` appends
///                      the newest N structured log lines from the ring
///                      (clamped to kLogRingCapacity; non-numeric N → 400)
///
/// Handlers resolve the matching global hook (GlobalMetrics /
/// GlobalProgress / GlobalTraceRecorder / GlobalWallProfiler) per request,
/// so they serve whatever the process attached; /metrics, /metrics.json,
/// /tracez and /profilez answer 503 while their hook is detached (the
/// health and status endpoints always answer 200). All handlers are
/// thread-safe and allocation-bounded — safe to scrape while a SaveAll
/// batch is running.
void RegisterObsEndpoints(HttpServer* server);

/// The version string baked into /healthz (DISC_VERSION, set by CMake).
const char* DiscVersion();

}  // namespace disc

#endif  // DISC_OBS_ENDPOINTS_H_
