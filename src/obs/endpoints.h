#ifndef DISC_OBS_ENDPOINTS_H_
#define DISC_OBS_ENDPOINTS_H_

#include <cstddef>
#include <initializer_list>
#include <limits>
#include <vector>

#include "obs/http_server.h"

namespace disc {

/// Registers the observability endpoints on `server` (call before
/// Start()):
///
///   GET /metrics       Prometheus text 0.0.4 from the global registry
///   GET /metrics.json  JSON exposition (schemas/metrics.schema.json)
///   GET /tracez        recent slow + currently active search spans
///                      (schemas/tracez.schema.json)
///   GET /profilez      wall-phase profile as folded-stack flamegraph JSON
///                      (schemas/profilez.schema.json); `?reset=1` returns
///                      the window and starts a fresh one
///   GET /explainz      recent + slowest search decision summaries from the
///                      global ExplainRecorder (schemas/explainz.schema.json);
///                      `?reset=1` like /profilez
///   GET /healthz       liveness + build info (version, compiler, build
///                      type, SIMD tiers, uptime, pid)
///   GET /statusz       live snapshot of in-flight save batches plus the
///                      same build info (schemas/statusz.schema.json);
///                      `?logs=N` appends the newest N structured log lines
///                      from the ring (clamped to kLogRingCapacity)
///
/// Query hardening: /tracez, /profilez, /explainz and /statusz validate
/// their query strings with ParseQuery — an unknown parameter or a
/// non-numeric value for a numeric one is a 400, and numeric values are
/// clamped to their documented maximum.
///
/// Handlers resolve the matching global hook (GlobalMetrics /
/// GlobalProgress / GlobalTraceRecorder / GlobalWallProfiler /
/// GlobalExplainRecorder) per request, so they serve whatever the process
/// attached; /metrics, /metrics.json, /tracez, /profilez and /explainz
/// answer 503 while their hook is detached (the health and status endpoints
/// always answer 200). All handlers are thread-safe and
/// allocation-bounded — safe to scrape while a SaveAll batch is running.
void RegisterObsEndpoints(HttpServer* server);

/// The version string baked into /healthz (DISC_VERSION, set by CMake).
const char* DiscVersion();

/// The CMake build type baked in at compile time (DISC_BUILD_TYPE), e.g.
/// "Release"; "unknown" when the definition is missing.
const char* DiscBuildType();

/// The compiler that built this binary, e.g. "gcc 12.2.0".
const char* DiscCompiler();

/// One numeric query parameter an endpoint accepts. Values are digit-only
/// unsigned integers; anything else is a client error.
struct QueryParam {
  const char* name = "";
  /// Inclusive maximum; parsed values clamp to it (asking for more than an
  /// endpoint can return must not error, it saturates).
  std::size_t max = std::numeric_limits<std::size_t>::max();
  /// Value reported when the parameter is absent or has an empty value.
  std::size_t fallback = 0;
};

/// Shared query-string validation for the observability endpoints: checks
/// `request.query` against the declared parameters. On success returns true
/// and writes each parameter's (clamped) value into `values` in declaration
/// order. A parameter name outside `params`, or a non-digit value for a
/// declared one, returns false with a 400 JSON error in `*error` naming the
/// offending parameter.
bool ParseQuery(const HttpRequest& request,
                std::initializer_list<QueryParam> params,
                std::vector<std::size_t>* values, HttpResponse* error);

}  // namespace disc

#endif  // DISC_OBS_ENDPOINTS_H_
