#include "obs/endpoints.h"

#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/json_writer.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "obs/progress.h"

#ifndef DISC_VERSION
#define DISC_VERSION "0.0.0-dev"
#endif

namespace disc {

namespace {

HttpResponse NoRegistry() {
  return HttpResponse::Json(
      "{\"error\":\"no metrics registry attached\",\"status\":503}\n", 503);
}

HttpResponse HandleMetrics(const HttpRequest&) {
  MetricsRegistry* registry = GlobalMetrics();
  if (registry == nullptr) return NoRegistry();
  return HttpResponse::Text(registry->ToPrometheusText());
}

HttpResponse HandleMetricsJson(const HttpRequest&) {
  MetricsRegistry* registry = GlobalMetrics();
  if (registry == nullptr) return NoRegistry();
  return HttpResponse::Json(registry->ToJson());
}

HttpResponse HandleTracez(const HttpRequest&) {
  TraceRecorder* recorder = GlobalTraceRecorder();
  if (recorder == nullptr) {
    return HttpResponse::Json(
        "{\"error\":\"no trace recorder attached\",\"status\":503}\n", 503);
  }
  return HttpResponse::Json(recorder->ToJson() + "\n");
}

HttpResponse HandleProfilez(const HttpRequest& request) {
  WallPhaseProfiler* profiler = GlobalWallProfiler();
  if (profiler == nullptr) {
    return HttpResponse::Json(
        "{\"error\":\"no wall profiler attached\",\"status\":503}\n", 503);
  }
  // ?reset=1 returns the profile accumulated since the last reset, then
  // starts a fresh window — the serve-side primitive for interval profiling
  // (`curl /profilez?reset=1` once a minute gives per-minute flamegraphs).
  std::string body = profiler->ToJson();
  if (request.QueryUint("reset", 0) == 1) profiler->Reset();
  return HttpResponse::Json(body + "\n");
}

}  // namespace

const char* DiscVersion() { return DISC_VERSION; }

void RegisterObsEndpoints(HttpServer* server) {
  const std::uint64_t start_ns = TraceNowNs();

  server->Handle("/metrics", HandleMetrics);
  server->Handle("/metrics.json", HandleMetricsJson);
  server->Handle("/tracez", HandleTracez);
  server->Handle("/profilez", HandleProfilez);

  server->Handle("/healthz", [start_ns](const HttpRequest&) {
    JsonWriter json;
    json.BeginObject();
    json.Key("status").String("ok");
    json.Key("version").String(DiscVersion());
    json.Key("uptime_seconds")
        .Number(static_cast<double>(TraceNowNs() - start_ns) * 1e-9);
    json.Key("pid").Int(static_cast<long long>(::getpid()));
    json.EndObject();
    return HttpResponse::Json(json.str() + "\n");
  });

  server->Handle("/statusz", [start_ns](const HttpRequest& request) {
    // Validate ?logs=N up front: a non-numeric value is a client error,
    // not a silent fallback, and N is clamped to the ring capacity (asking
    // for more lines than the ring holds cannot return more).
    std::size_t log_tail = 0;
    {
      auto it = request.query.find("logs");
      if (it != request.query.end() && !it->second.empty()) {
        for (char c : it->second) {
          if (c < '0' || c > '9') {
            return HttpResponse::Json(
                "{\"error\":\"logs must be a non-negative integer\","
                "\"status\":400}\n",
                400);
          }
        }
        log_tail = request.QueryUint("logs", kLogRingCapacity);
        log_tail = std::min(log_tail, kLogRingCapacity);
      }
    }
    JsonWriter json;
    json.BeginObject();
    json.Key("schema_version").Int(1);
    json.Key("uptime_seconds")
        .Number(static_cast<double>(TraceNowNs() - start_ns) * 1e-9);
    json.Key("metrics_attached").Bool(GlobalMetrics() != nullptr);
    json.Key("simd_tier").String(SimdTierName(ActiveSimdTier()));
    ProgressRegistry* progress = GlobalProgress();
    json.Key("progress_attached").Bool(progress != nullptr);
    json.Key("batches_started")
        .Uint(progress != nullptr ? progress->batches_started() : 0);
    json.Key("batches").BeginArray();
    if (progress != nullptr) {
      for (const auto& snap : progress->Snapshots()) snap.AppendJson(&json);
    }
    json.EndArray();
    json.Key("log_lines_emitted").Uint(LogLinesEmitted());
    if (log_tail > 0) {
      json.Key("logs").BeginArray();
      // Each ring entry is one already-rendered JSON object; splice as-is.
      for (const std::string& line : RecentLogs(log_tail)) json.Raw(line);
      json.EndArray();
    }
    json.EndObject();
    return HttpResponse::Json(json.str() + "\n");
  });
}

}  // namespace disc
