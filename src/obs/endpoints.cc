#include "obs/endpoints.h"

#include <unistd.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/cpu_features.h"
#include "common/json_writer.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "obs/explain.h"
#include "obs/progress.h"

#ifndef DISC_VERSION
#define DISC_VERSION "0.0.0-dev"
#endif

#ifndef DISC_BUILD_TYPE
#define DISC_BUILD_TYPE "unknown"
#endif

namespace disc {

namespace {

HttpResponse BadParam(const std::string& message) {
  JsonWriter json;
  json.BeginObject();
  json.Key("error").String(message);
  json.Key("status").Int(400);
  json.EndObject();
  return HttpResponse::Json(json.str() + "\n", 400);
}

/// Build metadata shared by /healthz and /statusz. Three SIMD fields on
/// purpose: compiled (what the binary carries), detected (what the CPU
/// supports), active (what dispatch resolved after the DISC_SIMD override) —
/// a mismatch between them is the first thing to check when throughput looks
/// wrong on a new machine.
void AppendBuildInfo(JsonWriter* json) {
  json->Key("version").String(DiscVersion());
  json->Key("compiler").String(DiscCompiler());
  json->Key("build_type").String(DiscBuildType());
  json->Key("simd_compiled").String(SimdTierName(CompiledSimdTier()));
  json->Key("simd_detected").String(SimdTierName(DetectedSimdTier()));
  json->Key("simd_tier").String(SimdTierName(ActiveSimdTier()));
}

HttpResponse NoRegistry() {
  return HttpResponse::Json(
      "{\"error\":\"no metrics registry attached\",\"status\":503}\n", 503);
}

HttpResponse HandleMetrics(const HttpRequest&) {
  MetricsRegistry* registry = GlobalMetrics();
  if (registry == nullptr) return NoRegistry();
  return HttpResponse::Text(registry->ToPrometheusText());
}

HttpResponse HandleMetricsJson(const HttpRequest&) {
  MetricsRegistry* registry = GlobalMetrics();
  if (registry == nullptr) return NoRegistry();
  return HttpResponse::Json(registry->ToJson());
}

HttpResponse HandleTracez(const HttpRequest& request) {
  HttpResponse error;
  std::vector<std::size_t> values;
  if (!ParseQuery(request, {}, &values, &error)) return error;
  TraceRecorder* recorder = GlobalTraceRecorder();
  if (recorder == nullptr) {
    return HttpResponse::Json(
        "{\"error\":\"no trace recorder attached\",\"status\":503}\n", 503);
  }
  return HttpResponse::Json(recorder->ToJson() + "\n");
}

HttpResponse HandleProfilez(const HttpRequest& request) {
  HttpResponse error;
  std::vector<std::size_t> values;
  if (!ParseQuery(request, {{"reset", 1, 0}}, &values, &error)) return error;
  WallPhaseProfiler* profiler = GlobalWallProfiler();
  if (profiler == nullptr) {
    return HttpResponse::Json(
        "{\"error\":\"no wall profiler attached\",\"status\":503}\n", 503);
  }
  // ?reset=1 returns the profile accumulated since the last reset, then
  // starts a fresh window — the serve-side primitive for interval profiling
  // (`curl /profilez?reset=1` once a minute gives per-minute flamegraphs).
  std::string body = profiler->ToJson();
  if (values[0] == 1) profiler->Reset();
  return HttpResponse::Json(body + "\n");
}

HttpResponse HandleExplainz(const HttpRequest& request) {
  HttpResponse error;
  std::vector<std::size_t> values;
  if (!ParseQuery(request, {{"reset", 1, 0}}, &values, &error)) return error;
  ExplainRecorder* recorder = GlobalExplainRecorder();
  if (recorder == nullptr) {
    return HttpResponse::Json(
        "{\"error\":\"no explain recorder attached\",\"status\":503}\n", 503);
  }
  // Same body-then-reset contract as /profilez: the response carries the
  // window being closed, so an interval scraper never loses a search.
  std::string body = recorder->ToJson();
  if (values[0] == 1) recorder->Reset();
  return HttpResponse::Json(body + "\n");
}

}  // namespace

const char* DiscVersion() { return DISC_VERSION; }

const char* DiscBuildType() { return DISC_BUILD_TYPE; }

const char* DiscCompiler() {
#if defined(__clang__)
  return "clang " __clang_version__;
#elif defined(__GNUC__)
  return "gcc " __VERSION__;
#else
  return "unknown";
#endif
}

bool ParseQuery(const HttpRequest& request,
                std::initializer_list<QueryParam> params,
                std::vector<std::size_t>* values, HttpResponse* error) {
  for (const auto& [name, raw] : request.query) {
    bool known = false;
    for (const QueryParam& param : params) {
      if (name == param.name) {
        known = true;
        break;
      }
    }
    if (!known) {
      *error = BadParam("unknown query parameter: " + name);
      return false;
    }
  }
  values->clear();
  values->reserve(params.size());
  for (const QueryParam& param : params) {
    auto it = request.query.find(param.name);
    if (it == request.query.end() || it->second.empty()) {
      values->push_back(param.fallback);
      continue;
    }
    std::size_t value = 0;
    for (char c : it->second) {
      if (c < '0' || c > '9') {
        *error = BadParam(std::string(param.name) +
                          " must be a non-negative integer");
        return false;
      }
      // Saturating accumulate: once past the cap the remaining digits can
      // only push further past it, so clamp and stop (also avoids overflow).
      if (value < param.max) {
        value = value * 10 + static_cast<std::size_t>(c - '0');
        value = std::min(value, param.max);
      }
    }
    values->push_back(value);
  }
  return true;
}

void RegisterObsEndpoints(HttpServer* server) {
  const std::uint64_t start_ns = TraceNowNs();

  server->Handle("/metrics", HandleMetrics);
  server->Handle("/metrics.json", HandleMetricsJson);
  server->Handle("/tracez", HandleTracez);
  server->Handle("/profilez", HandleProfilez);
  server->Handle("/explainz", HandleExplainz);

  server->Handle("/healthz", [start_ns](const HttpRequest&) {
    JsonWriter json;
    json.BeginObject();
    json.Key("status").String("ok");
    AppendBuildInfo(&json);
    json.Key("uptime_seconds")
        .Number(static_cast<double>(TraceNowNs() - start_ns) * 1e-9);
    json.Key("pid").Int(static_cast<long long>(::getpid()));
    json.EndObject();
    return HttpResponse::Json(json.str() + "\n");
  });

  server->Handle("/statusz", [start_ns](const HttpRequest& request) {
    HttpResponse error;
    std::vector<std::size_t> values;
    if (!ParseQuery(request, {{"logs", kLogRingCapacity, 0}}, &values,
                    &error)) {
      return error;
    }
    const std::size_t log_tail = values[0];
    JsonWriter json;
    json.BeginObject();
    json.Key("schema_version").Int(1);
    json.Key("uptime_seconds")
        .Number(static_cast<double>(TraceNowNs() - start_ns) * 1e-9);
    AppendBuildInfo(&json);
    json.Key("metrics_attached").Bool(GlobalMetrics() != nullptr);
    ProgressRegistry* progress = GlobalProgress();
    json.Key("progress_attached").Bool(progress != nullptr);
    json.Key("batches_started")
        .Uint(progress != nullptr ? progress->batches_started() : 0);
    json.Key("batches").BeginArray();
    if (progress != nullptr) {
      for (const auto& snap : progress->Snapshots()) snap.AppendJson(&json);
    }
    json.EndArray();
    json.Key("log_lines_emitted").Uint(LogLinesEmitted());
    if (log_tail > 0) {
      json.Key("logs").BeginArray();
      // Each ring entry is one already-rendered JSON object; splice as-is.
      for (const std::string& line : RecentLogs(log_tail)) json.Raw(line);
      json.EndArray();
    }
    json.EndObject();
    return HttpResponse::Json(json.str() + "\n");
  });
}

}  // namespace disc
