#include "clustering/kmc.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/random.h"

namespace disc {

namespace {

/// Weighted Lloyd iterations over a coreset.
std::vector<std::vector<double>> WeightedKMeans(
    const std::vector<std::vector<double>>& points,
    const std::vector<double>& weights, std::size_t k,
    std::size_t max_iterations, std::uint64_t seed) {
  const std::size_t n = points.size();
  const std::size_t dims = points[0].size();
  std::vector<std::vector<double>> centers = KMeansPlusPlusInit(points, k, seed);
  std::vector<int> assign(n, 0);

  for (std::size_t iter = 0; iter < max_iterations; ++iter) {
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      for (std::size_t c = 0; c < centers.size(); ++c) {
        double d = SquaredEuclidean(points[i], centers[c]);
        if (d < best) {
          best = d;
          assign[i] = static_cast<int>(c);
        }
      }
    }
    std::vector<std::vector<double>> sums(centers.size(),
                                          std::vector<double>(dims, 0));
    std::vector<double> mass(centers.size(), 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto c = static_cast<std::size_t>(assign[i]);
      mass[c] += weights[i];
      for (std::size_t d = 0; d < dims; ++d) {
        sums[c][d] += weights[i] * points[i][d];
      }
    }
    double movement = 0;
    for (std::size_t c = 0; c < centers.size(); ++c) {
      if (mass[c] <= 0) continue;
      std::vector<double> next(dims);
      for (std::size_t d = 0; d < dims; ++d) next[d] = sums[c][d] / mass[c];
      movement += SquaredEuclidean(centers[c], next);
      centers[c] = std::move(next);
    }
    if (movement <= 1e-8) break;
  }
  return centers;
}

}  // namespace

KMeansResult Kmc(const Relation& relation, const KmcParams& params) {
  std::vector<std::vector<double>> points = ExtractPoints(relation);
  KMeansResult result;
  const std::size_t n = points.size();
  result.labels.assign(n, kNoise);
  if (n == 0 || params.k == 0) return result;
  const std::size_t k = std::min(params.k, n);

  std::size_t coreset_size = params.coreset_size;
  if (coreset_size == 0) {
    // Chen's construction needs the kernel to grow with k; 20 points per
    // center plus a 4·sqrt(n) floor works across the Table-1 shapes
    // (k = 26 on Letter would starve on a bare sqrt(n) kernel).
    coreset_size = std::max<std::size_t>(
        20 * k,
        static_cast<std::size_t>(
            std::ceil(4.0 * std::sqrt(static_cast<double>(n)))));
  }
  coreset_size = std::min(coreset_size, n);

  Rng rng(params.seed ^ 0x4B4D43);

  if (coreset_size >= n) {
    KMeansParams kp{k, params.max_iterations, 1e-8, params.seed};
    return KMeansOnPoints(points, kp);
  }

  // Sensitivity-proportional sampling: sample with probability proportional
  // to the squared distance to a rough bicriteria solution (the k-means++
  // seeds), plus a uniform floor. This is the practical core of Chen's
  // coreset construction.
  std::vector<std::vector<double>> seeds = KMeansPlusPlusInit(points, k, rng.NextU64());
  std::vector<double> sens(n, 0);
  double total_cost = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (const auto& s : seeds) best = std::min(best, SquaredEuclidean(points[i], s));
    sens[i] = best;
    total_cost += best;
  }
  double uniform_floor = total_cost > 0 ? total_cost / static_cast<double>(n) : 1.0;
  std::vector<double> prob(n);
  double prob_sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    prob[i] = sens[i] + uniform_floor;
    prob_sum += prob[i];
  }

  std::vector<std::vector<double>> coreset;
  std::vector<double> weights;
  coreset.reserve(coreset_size);
  weights.reserve(coreset_size);
  for (std::size_t s = 0; s < coreset_size; ++s) {
    double target = rng.Uniform() * prob_sum;
    double acc = 0;
    std::size_t chosen = n - 1;
    for (std::size_t i = 0; i < n; ++i) {
      acc += prob[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    coreset.push_back(points[chosen]);
    // Importance weight: inverse of the inclusion probability.
    double p = prob[chosen] / prob_sum;
    weights.push_back(1.0 / (static_cast<double>(coreset_size) * p));
  }

  result.centers = WeightedKMeans(coreset, weights, k, params.max_iterations,
                                  rng.NextU64());

  result.inertia = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (std::size_t c = 0; c < result.centers.size(); ++c) {
      double d = SquaredEuclidean(points[i], result.centers[c]);
      if (d < best) {
        best = d;
        best_c = static_cast<int>(c);
      }
    }
    result.labels[i] = best_c;
    result.inertia += best;
  }
  return result;
}

}  // namespace disc
