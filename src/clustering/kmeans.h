#ifndef DISC_CLUSTERING_KMEANS_H_
#define DISC_CLUSTERING_KMEANS_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "clustering/labels.h"
#include "common/relation.h"

namespace disc {

/// Lloyd K-Means parameters.
struct KMeansParams {
  std::size_t k = 2;
  std::size_t max_iterations = 100;
  /// Convergence threshold on total squared center movement.
  double tolerance = 1e-8;
  std::uint64_t seed = 42;
  /// Independent k-means++ restarts; the run with the lowest inertia wins
  /// (scikit-learn's n_init behaviour — guards against a bad seeding).
  std::size_t n_init = 5;
};

/// Result of a K-Means style run: assignment plus the fitted centers and
/// the final within-cluster sum of squares (the Lloyd objective).
struct KMeansResult {
  Labels labels;
  std::vector<std::vector<double>> centers;
  double inertia = 0;
};

/// Lloyd K-Means with k-means++ seeding. Numeric relations only — every
/// point is assigned (no noise), as in the classical algorithm the paper
/// contrasts against DBSCAN.
KMeansResult KMeans(const Relation& relation, const KMeansParams& params);

/// K-Means over pre-extracted dense points (building block shared by
/// K-Means--, CCKM and KMC).
KMeansResult KMeansOnPoints(const std::vector<std::vector<double>>& points,
                            const KMeansParams& params);

/// k-means++ center initialization over `points` (exposed for reuse).
std::vector<std::vector<double>> KMeansPlusPlusInit(
    const std::vector<std::vector<double>>& points, std::size_t k,
    std::uint64_t seed);

}  // namespace disc

#endif  // DISC_CLUSTERING_KMEANS_H_
