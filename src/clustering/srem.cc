#include "clustering/srem.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numbers>

#include "common/log.h"
#include "common/random.h"

namespace disc {

namespace {

struct GmmModel {
  std::vector<std::vector<double>> means;
  std::vector<double> variances;  // spherical: one variance per component
  std::vector<double> weights;
  double log_likelihood = -std::numeric_limits<double>::infinity();
};

double LogGaussianSpherical(const std::vector<double>& x,
                            const std::vector<double>& mean, double variance) {
  const auto d = static_cast<double>(x.size());
  double sq = SquaredEuclidean(x, mean);
  return -0.5 * (d * std::log(2.0 * std::numbers::pi * variance) + sq / variance);
}

double LogSumExp(const std::vector<double>& xs) {
  double max_x = -std::numeric_limits<double>::infinity();
  for (double x : xs) max_x = std::max(max_x, x);
  if (!std::isfinite(max_x)) return max_x;
  double sum = 0;
  for (double x : xs) sum += std::exp(x - max_x);
  return max_x + std::log(sum);
}

GmmModel FitOnce(const std::vector<std::vector<double>>& points,
                 const SremParams& params, std::uint64_t seed) {
  const std::size_t n = points.size();
  const std::size_t k = std::min(params.k, n);
  const std::size_t dims = points[0].size();

  GmmModel model;
  model.means = KMeansPlusPlusInit(points, k, seed);
  // Initial variance: mean squared distance to the nearest initial mean.
  double init_var = 0;
  for (std::size_t i = 0; i < n; ++i) {
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < k; ++c) {
      best = std::min(best, SquaredEuclidean(points[i], model.means[c]));
    }
    init_var += best;
  }
  init_var = std::max(init_var / (static_cast<double>(n) * static_cast<double>(dims)), 1e-6);
  model.variances.assign(k, init_var);
  model.weights.assign(k, 1.0 / static_cast<double>(k));

  std::vector<std::vector<double>> resp(n, std::vector<double>(k, 0));
  double prev_ll = -std::numeric_limits<double>::infinity();

  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    // E step.
    double ll = 0;
    std::vector<double> log_terms(k);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t c = 0; c < k; ++c) {
        log_terms[c] = std::log(std::max(model.weights[c], 1e-300)) +
                       LogGaussianSpherical(points[i], model.means[c],
                                            model.variances[c]);
      }
      double norm = LogSumExp(log_terms);
      ll += norm;
      for (std::size_t c = 0; c < k; ++c) {
        resp[i][c] = std::exp(log_terms[c] - norm);
      }
    }
    model.log_likelihood = ll;
    if (std::fabs(ll - prev_ll) < params.tolerance * (1.0 + std::fabs(ll))) {
      break;
    }
    prev_ll = ll;

    // M step.
    for (std::size_t c = 0; c < k; ++c) {
      double nk = 0;
      for (std::size_t i = 0; i < n; ++i) nk += resp[i][c];
      nk = std::max(nk, 1e-12);
      model.weights[c] = nk / static_cast<double>(n);
      std::vector<double> mean(dims, 0);
      for (std::size_t i = 0; i < n; ++i) {
        for (std::size_t d = 0; d < dims; ++d) mean[d] += resp[i][c] * points[i][d];
      }
      for (std::size_t d = 0; d < dims; ++d) mean[d] /= nk;
      double var = 0;
      for (std::size_t i = 0; i < n; ++i) {
        var += resp[i][c] * SquaredEuclidean(points[i], mean);
      }
      var = var / (nk * static_cast<double>(dims));
      model.means[c] = std::move(mean);
      model.variances[c] = std::max(var, 1e-9);
    }
  }
  return model;
}

}  // namespace

SremResult Srem(const Relation& relation, const SremParams& params) {
  std::vector<std::vector<double>> points = ExtractPoints(relation);
  SremResult result;
  const std::size_t n = points.size();
  result.labels.assign(n, kNoise);
  if (n == 0 || params.k == 0) return result;
  const std::size_t k = std::min(params.k, n);
  if (k != params.k) {
    DISC_LOG(WARN).Uint("k", params.k).Uint("n", n)
        << "SREM: more components requested than points; clamping k to n";
  }

  // Stability-by-restart: fit from several perturbed initializations and
  // keep the converged model with the best likelihood.
  GmmModel best;
  Rng rng(params.seed);
  for (std::size_t r = 0; r < std::max<std::size_t>(params.restarts, 1); ++r) {
    GmmModel model = FitOnce(points, params, rng.NextU64());
    if (model.log_likelihood > best.log_likelihood) best = std::move(model);
  }

  result.log_likelihood = best.log_likelihood;
  result.means = best.means;
  result.variances = best.variances;
  result.weights = best.weights;

  for (std::size_t i = 0; i < n; ++i) {
    double best_score = -std::numeric_limits<double>::infinity();
    int best_c = 0;
    for (std::size_t c = 0; c < k; ++c) {
      double score = std::log(std::max(best.weights[c], 1e-300)) +
                     LogGaussianSpherical(points[i], best.means[c],
                                          best.variances[c]);
      if (score > best_score) {
        best_score = score;
        best_c = static_cast<int>(c);
      }
    }
    result.labels[i] = best_c;
  }
  return result;
}

}  // namespace disc
