#include "clustering/optics.h"

#include <algorithm>
#include <limits>
#include <memory>
#include <queue>

#include "index/index_factory.h"

namespace disc {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Min-heap keyed by current reachability; lazily invalidated entries are
/// skipped on pop (standard OPTICS seed-list implementation).
struct Seed {
  double reachability;
  std::size_t row;
  friend bool operator>(const Seed& a, const Seed& b) {
    return a.reachability > b.reachability ||
           (a.reachability == b.reachability && a.row > b.row);
  }
};

}  // namespace

std::vector<OpticsEntry> OpticsOrdering(const Relation& relation,
                                        const DistanceEvaluator& evaluator,
                                        const OpticsParams& params) {
  const std::size_t n = relation.size();
  std::vector<OpticsEntry> ordering;
  ordering.reserve(n);
  if (n == 0) return ordering;

  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(relation, evaluator, params.max_epsilon);

  std::vector<bool> processed(n, false);
  std::vector<double> reachability(n, kInf);

  auto core_distance_of = [&](const std::vector<Neighbor>& neighbors) {
    // Neighbors are sorted by distance and include the point itself; the
    // core distance is the distance to the min_pts-th of them.
    if (neighbors.size() < params.min_pts) return kInf;
    return neighbors[params.min_pts - 1].distance;
  };

  for (std::size_t start = 0; start < n; ++start) {
    if (processed[start]) continue;

    std::priority_queue<Seed, std::vector<Seed>, std::greater<>> seeds;
    seeds.push({kInf, start});

    while (!seeds.empty()) {
      Seed seed = seeds.top();
      seeds.pop();
      std::size_t p = seed.row;
      if (processed[p]) continue;  // stale heap entry
      processed[p] = true;

      std::vector<Neighbor> neighbors =
          index->RangeQuery(relation[p], params.max_epsilon);
      double core = core_distance_of(neighbors);

      OpticsEntry entry;
      entry.row = p;
      entry.reachability = reachability[p];
      entry.core_distance = core;
      ordering.push_back(entry);

      if (core == kInf) continue;  // not a core point: expands nothing
      for (const Neighbor& nb : neighbors) {
        if (processed[nb.row]) continue;
        double reach = std::max(core, nb.distance);
        if (reach < reachability[nb.row]) {
          reachability[nb.row] = reach;
          seeds.push({reach, nb.row});
        }
      }
    }
  }
  return ordering;
}

Labels ExtractDbscanClustering(const std::vector<OpticsEntry>& ordering,
                               double epsilon, std::size_t n) {
  Labels labels(n, kNoise);
  int cluster = -1;
  for (const OpticsEntry& entry : ordering) {
    if (entry.reachability > epsilon) {
      if (entry.core_distance <= epsilon) {
        ++cluster;  // starts a new cluster
        labels[entry.row] = cluster;
      }  // else noise
    } else if (cluster >= 0) {
      labels[entry.row] = cluster;
    }
  }
  return labels;
}

Labels Optics(const Relation& relation, const DistanceEvaluator& evaluator,
              const OpticsParams& params, double extraction_epsilon) {
  std::vector<OpticsEntry> ordering =
      OpticsOrdering(relation, evaluator, params);
  return ExtractDbscanClustering(ordering, extraction_epsilon,
                                 relation.size());
}

}  // namespace disc
