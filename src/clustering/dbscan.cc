#include "clustering/dbscan.h"

#include <deque>
#include <memory>

#include "index/index_factory.h"

namespace disc {

Labels Dbscan(const Relation& relation, const DistanceEvaluator& evaluator,
              const DbscanParams& params) {
  const std::size_t n = relation.size();
  Labels labels(n, kNoise);
  if (n == 0) return labels;

  std::unique_ptr<NeighborIndex> index =
      MakeNeighborIndex(relation, evaluator, params.epsilon);

  std::vector<bool> visited(n, false);
  int next_cluster = 0;

  for (std::size_t seed = 0; seed < n; ++seed) {
    if (visited[seed]) continue;
    visited[seed] = true;

    std::vector<Neighbor> seed_neighbors =
        index->RangeQuery(relation[seed], params.epsilon);
    if (seed_neighbors.size() < params.min_pts) {
      continue;  // not a core point; may later become a border point
    }

    const int cluster = next_cluster++;
    labels[seed] = cluster;

    // Expand the cluster breadth-first through density-reachable points.
    std::deque<std::size_t> frontier;
    for (const Neighbor& nb : seed_neighbors) frontier.push_back(nb.row);

    while (!frontier.empty()) {
      std::size_t p = frontier.front();
      frontier.pop_front();
      if (labels[p] == kNoise) {
        labels[p] = cluster;  // border or core — joins this cluster
      }
      if (visited[p]) continue;
      visited[p] = true;
      std::vector<Neighbor> nn = index->RangeQuery(relation[p], params.epsilon);
      if (nn.size() >= params.min_pts) {
        for (const Neighbor& nb : nn) {
          if (!visited[nb.row] || labels[nb.row] == kNoise) {
            frontier.push_back(nb.row);
          }
        }
      }
    }
  }
  return labels;
}

}  // namespace disc
