#ifndef DISC_CLUSTERING_LABELS_H_
#define DISC_CLUSTERING_LABELS_H_

#include <cstddef>
#include <vector>

#include "common/relation.h"

namespace disc {

/// Cluster assignment: labels[i] is the cluster id of tuple i, or kNoise.
using Labels = std::vector<int>;

/// Label for points assigned to no cluster (DBSCAN noise, K-Means--
/// outliers, CCKM auxiliary cluster members).
inline constexpr int kNoise = -1;

/// Number of distinct non-noise clusters in `labels`.
std::size_t NumClusters(const Labels& labels);

/// Number of noise points in `labels`.
std::size_t NumNoise(const Labels& labels);

/// Renumbers cluster ids to 0..k-1 in order of first appearance
/// (noise stays kNoise).
Labels Canonicalize(const Labels& labels);

/// Extracts all-numeric rows as dense points. Requires an all-numeric
/// schema; the backbone of the centroid-based algorithms.
std::vector<std::vector<double>> ExtractPoints(const Relation& relation);

/// Squared Euclidean distance between dense points of equal dimension.
double SquaredEuclidean(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace disc

#endif  // DISC_CLUSTERING_LABELS_H_
