#include "clustering/labels.h"

#include <algorithm>
#include <unordered_map>

namespace disc {

std::size_t NumClusters(const Labels& labels) {
  std::vector<int> ids;
  for (int label : labels) {
    if (label != kNoise) ids.push_back(label);
  }
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  return ids.size();
}

std::size_t NumNoise(const Labels& labels) {
  return static_cast<std::size_t>(
      std::count(labels.begin(), labels.end(), kNoise));
}

Labels Canonicalize(const Labels& labels) {
  Labels out(labels.size(), kNoise);
  std::unordered_map<int, int> remap;
  int next = 0;
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (labels[i] == kNoise) continue;
    auto [it, inserted] = remap.emplace(labels[i], next);
    if (inserted) ++next;
    out[i] = it->second;
  }
  return out;
}

std::vector<std::vector<double>> ExtractPoints(const Relation& relation) {
  std::vector<std::vector<double>> points;
  points.reserve(relation.size());
  const std::size_t m = relation.arity();
  for (const Tuple& t : relation) {
    std::vector<double> p(m);
    for (std::size_t a = 0; a < m; ++a) p[a] = t[a].num();
    points.push_back(std::move(p));
  }
  return points;
}

double SquaredEuclidean(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double sum = 0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    double d = a[i] - b[i];
    sum += d * d;
  }
  return sum;
}

}  // namespace disc
