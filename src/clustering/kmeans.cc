#include "clustering/kmeans.h"

#include <algorithm>
#include <limits>

#include "common/random.h"

namespace disc {

std::vector<std::vector<double>> KMeansPlusPlusInit(
    const std::vector<std::vector<double>>& points, std::size_t k,
    std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> centers;
  const std::size_t n = points.size();
  if (n == 0 || k == 0) return centers;
  k = std::min(k, n);

  centers.push_back(points[rng.NextIndex(n)]);
  std::vector<double> min_sq(n, std::numeric_limits<double>::infinity());
  while (centers.size() < k) {
    double total = 0;
    for (std::size_t i = 0; i < n; ++i) {
      min_sq[i] = std::min(min_sq[i], SquaredEuclidean(points[i], centers.back()));
      total += min_sq[i];
    }
    if (total <= 0) {
      // All remaining points coincide with chosen centers; pick arbitrary.
      centers.push_back(points[rng.NextIndex(n)]);
      continue;
    }
    double target = rng.Uniform() * total;
    std::size_t chosen = n - 1;
    double acc = 0;
    for (std::size_t i = 0; i < n; ++i) {
      acc += min_sq[i];
      if (acc >= target) {
        chosen = i;
        break;
      }
    }
    centers.push_back(points[chosen]);
  }
  return centers;
}

namespace {

/// One Lloyd run from a single k-means++ seeding.
KMeansResult LloydOnce(const std::vector<std::vector<double>>& points,
                       const KMeansParams& params, std::uint64_t seed) {
  KMeansResult result;
  const std::size_t n = points.size();
  result.labels.assign(n, kNoise);
  if (n == 0 || params.k == 0) return result;
  const std::size_t k = std::min(params.k, n);
  const std::size_t dims = points[0].size();

  result.centers = KMeansPlusPlusInit(points, k, seed);

  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    // Assignment step.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        double d = SquaredEuclidean(points[i], result.centers[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      result.labels[i] = best_c;
    }

    // Update step.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      auto c = static_cast<std::size_t>(result.labels[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    double movement = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;  // empty cluster keeps its center
      std::vector<double> next(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        next[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
      movement += SquaredEuclidean(result.centers[c], next);
      result.centers[c] = std::move(next);
    }
    if (movement <= params.tolerance) break;
  }

  result.inertia = 0;
  for (std::size_t i = 0; i < n; ++i) {
    result.inertia += SquaredEuclidean(
        points[i], result.centers[static_cast<std::size_t>(result.labels[i])]);
  }
  return result;
}

}  // namespace

KMeansResult KMeansOnPoints(const std::vector<std::vector<double>>& points,
                            const KMeansParams& params) {
  const std::size_t restarts = params.n_init == 0 ? 1 : params.n_init;
  KMeansResult best;
  bool first = true;
  for (std::size_t r = 0; r < restarts; ++r) {
    KMeansResult run = LloydOnce(points, params, params.seed + 7919 * r);
    if (first || run.inertia < best.inertia) {
      best = std::move(run);
      first = false;
    }
  }
  return best;
}

KMeansResult KMeans(const Relation& relation, const KMeansParams& params) {
  return KMeansOnPoints(ExtractPoints(relation), params);
}

}  // namespace disc
