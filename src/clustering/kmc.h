#ifndef DISC_CLUSTERING_KMC_H_
#define DISC_CLUSTERING_KMC_H_

#include <cstddef>
#include <cstdint>

#include "clustering/kmeans.h"
#include "clustering/labels.h"
#include "common/relation.h"

namespace disc {

/// KMC parameters (after Chen: coresets for k-means). A small weighted
/// kernel (coreset) is extracted by sensitivity-proportional sampling; the
/// weighted Lloyd iterations run on the kernel only, and the resulting
/// centers label the full dataset.
struct KmcParams {
  std::size_t k = 2;
  /// Coreset size; 0 picks max(20·k, ceil(sqrt(n))) automatically.
  std::size_t coreset_size = 0;
  std::size_t max_iterations = 100;
  std::uint64_t seed = 42;
};

/// Coreset-approximated K-Means.
KMeansResult Kmc(const Relation& relation, const KmcParams& params);

}  // namespace disc

#endif  // DISC_CLUSTERING_KMC_H_
