#include "clustering/kmeans_mm.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace disc {

KMeansResult KMeansMM(const Relation& relation, const KMeansMMParams& params) {
  std::vector<std::vector<double>> points = ExtractPoints(relation);
  KMeansResult result;
  const std::size_t n = points.size();
  result.labels.assign(n, kNoise);
  if (n == 0 || params.k == 0) return result;
  const std::size_t k = std::min(params.k, n);
  const std::size_t l = std::min(params.l, n > k ? n - k : 0);
  const std::size_t dims = points[0].size();

  result.centers = KMeansPlusPlusInit(points, k, params.seed);

  std::vector<double> nearest_sq(n, 0);
  std::vector<int> nearest_c(n, 0);
  std::vector<bool> is_outlier(n, false);

  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    // Distance of every point to its nearest center.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        double d = SquaredEuclidean(points[i], result.centers[c]);
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      nearest_sq[i] = best;
      nearest_c[i] = best_c;
    }

    // The l farthest points become this iteration's outliers.
    std::vector<std::size_t> order(n);
    std::iota(order.begin(), order.end(), std::size_t{0});
    if (l > 0) {
      std::nth_element(order.begin(), order.begin() + static_cast<std::ptrdiff_t>(n - l),
                       order.end(), [&](std::size_t a, std::size_t b) {
                         return nearest_sq[a] < nearest_sq[b];
                       });
    }
    std::fill(is_outlier.begin(), is_outlier.end(), false);
    for (std::size_t i = n - l; i < n; ++i) is_outlier[order[i]] = true;

    // Update centers from inliers only.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (is_outlier[i]) continue;
      auto c = static_cast<std::size_t>(nearest_c[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    double movement = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      std::vector<double> next(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        next[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
      movement += SquaredEuclidean(result.centers[c], next);
      result.centers[c] = std::move(next);
    }
    if (movement <= 1e-8) break;
  }

  result.inertia = 0;
  for (std::size_t i = 0; i < n; ++i) {
    if (is_outlier[i]) {
      result.labels[i] = kNoise;
    } else {
      result.labels[i] = nearest_c[i];
      result.inertia += nearest_sq[i];
    }
  }
  return result;
}

}  // namespace disc
