#ifndef DISC_CLUSTERING_SREM_H_
#define DISC_CLUSTERING_SREM_H_

#include <cstddef>
#include <cstdint>

#include "clustering/kmeans.h"
#include "clustering/labels.h"
#include "common/relation.h"

namespace disc {

/// SREM parameters (after Reddy et al.: stability-region-based EM for
/// model-based clustering). A spherical Gaussian mixture is fitted with EM
/// from several perturbed restarts; the restart whose converged model has
/// the best log-likelihood (the most stable basin reached) is kept, which
/// reduces sensitivity to initial points.
struct SremParams {
  std::size_t k = 2;
  std::size_t restarts = 5;
  std::size_t max_iterations = 60;
  double tolerance = 1e-6;
  std::uint64_t seed = 42;
};

/// Result of an SREM fit: hard assignment by maximum responsibility plus
/// model log-likelihood.
struct SremResult {
  Labels labels;
  double log_likelihood = 0;
  std::vector<std::vector<double>> means;
  std::vector<double> variances;
  std::vector<double> weights;
};

/// Multi-restart spherical-GMM EM clustering.
SremResult Srem(const Relation& relation, const SremParams& params);

}  // namespace disc

#endif  // DISC_CLUSTERING_SREM_H_
