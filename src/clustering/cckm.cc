#include "clustering/cckm.h"

#include <algorithm>
#include <limits>
#include <numeric>

namespace disc {

KMeansResult Cckm(const Relation& relation, const CckmParams& params) {
  std::vector<std::vector<double>> points = ExtractPoints(relation);
  KMeansResult result;
  const std::size_t n = points.size();
  result.labels.assign(n, kNoise);
  if (n == 0 || params.k == 0) return result;
  const std::size_t k = std::min(params.k, n);
  const std::size_t budget = std::min(params.outlier_budget, n);
  const std::size_t dims = points[0].size();
  const double target_size = static_cast<double>(n - budget) / static_cast<double>(k);

  result.centers = KMeansPlusPlusInit(points, k, params.seed ^ 0xCCC);
  std::vector<std::size_t> sizes(k, 0);
  std::vector<double> assign_cost(n, 0);
  std::vector<int> assign_c(n, 0);

  // Mean squared pairwise scale used to normalize the balance penalty.
  double scale = 0;
  {
    std::size_t samples = std::min<std::size_t>(n, 256);
    std::size_t pairs = 0;
    for (std::size_t i = 0; i + 1 < samples; ++i) {
      scale += SquaredEuclidean(points[i], points[i + 1]);
      ++pairs;
    }
    scale = pairs ? scale / static_cast<double>(pairs) : 1.0;
    if (scale <= 0) scale = 1.0;
  }

  for (std::size_t iter = 0; iter < params.max_iterations; ++iter) {
    std::fill(sizes.begin(), sizes.end(), std::size_t{0});
    // Greedy balanced assignment: distance + penalty for over-full clusters.
    for (std::size_t i = 0; i < n; ++i) {
      double best = std::numeric_limits<double>::infinity();
      int best_c = 0;
      for (std::size_t c = 0; c < k; ++c) {
        double over = std::max(0.0, static_cast<double>(sizes[c]) - target_size);
        double penalty = params.balance_weight * scale * over / target_size;
        double d = SquaredEuclidean(points[i], result.centers[c]) + penalty;
        if (d < best) {
          best = d;
          best_c = static_cast<int>(c);
        }
      }
      assign_cost[i] = SquaredEuclidean(points[i], result.centers[static_cast<std::size_t>(best_c)]);
      assign_c[i] = best_c;
      ++sizes[static_cast<std::size_t>(best_c)];
    }

    // Auxiliary outlier cluster: the `budget` worst-fitting points.
    std::vector<bool> is_outlier(n, false);
    if (budget > 0) {
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), std::size_t{0});
      std::nth_element(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(n - budget),
                       order.end(), [&](std::size_t a, std::size_t b) {
                         return assign_cost[a] < assign_cost[b];
                       });
      for (std::size_t i = n - budget; i < n; ++i) is_outlier[order[i]] = true;
    }

    // Center update from non-outlier points.
    std::vector<std::vector<double>> sums(k, std::vector<double>(dims, 0));
    std::vector<std::size_t> counts(k, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (is_outlier[i]) continue;
      auto c = static_cast<std::size_t>(assign_c[i]);
      ++counts[c];
      for (std::size_t d = 0; d < dims; ++d) sums[c][d] += points[i][d];
    }
    double movement = 0;
    for (std::size_t c = 0; c < k; ++c) {
      if (counts[c] == 0) continue;
      std::vector<double> next(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        next[d] = sums[c][d] / static_cast<double>(counts[c]);
      }
      movement += SquaredEuclidean(result.centers[c], next);
      result.centers[c] = std::move(next);
    }

    // Final labels reflect this iteration's assignment.
    result.inertia = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (is_outlier[i]) {
        result.labels[i] = kNoise;
      } else {
        result.labels[i] = assign_c[i];
        result.inertia += assign_cost[i];
      }
    }
    if (movement <= 1e-8) break;
  }
  return result;
}

}  // namespace disc
