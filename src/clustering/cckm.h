#ifndef DISC_CLUSTERING_CCKM_H_
#define DISC_CLUSTERING_CCKM_H_

#include <cstddef>
#include <cstdint>

#include "clustering/kmeans.h"
#include "clustering/labels.h"
#include "common/relation.h"

namespace disc {

/// CCKM parameters (after Rujeerapaiboon et al.: cardinality-constrained
/// clustering and outlier detection). An auxiliary outlier cluster with a
/// fixed cardinality budget absorbs the points that fit worst, and cluster
/// sizes are softly balanced toward n/k.
struct CckmParams {
  std::size_t k = 2;
  /// Cardinality of the auxiliary outlier cluster.
  std::size_t outlier_budget = 0;
  /// Strength of the cluster-size balancing penalty (0 disables balancing).
  double balance_weight = 0.1;
  std::size_t max_iterations = 100;
  std::uint64_t seed = 42;
};

/// Cardinality-constrained K-Means with an auxiliary outlier cluster.
/// Assignment greedily minimizes distance plus a size-penalty term, and the
/// `outlier_budget` worst-fitting points go to the auxiliary cluster
/// (labeled kNoise).
KMeansResult Cckm(const Relation& relation, const CckmParams& params);

}  // namespace disc

#endif  // DISC_CLUSTERING_CCKM_H_
