#ifndef DISC_CLUSTERING_OPTICS_H_
#define DISC_CLUSTERING_OPTICS_H_

#include <cstddef>
#include <vector>

#include "clustering/labels.h"
#include "common/relation.h"
#include "distance/evaluator.h"

namespace disc {

/// OPTICS parameters (Ankerst et al., SIGMOD'99 — cited by the paper in §5
/// as a density-based DBSCAN variant). `max_epsilon` caps the neighborhood
/// search; `min_pts` is the core-point threshold.
struct OpticsParams {
  double max_epsilon = 1.0;
  std::size_t min_pts = 4;
};

/// One entry of the OPTICS ordering: the visit order plus the reachability
/// and core distances that encode the density structure.
struct OpticsEntry {
  std::size_t row = 0;
  /// Reachability distance (infinity for the first point of a component).
  double reachability = 0;
  /// Core distance (infinity when the point is never a core point).
  double core_distance = 0;
};

/// Computes the OPTICS cluster ordering of `relation`.
std::vector<OpticsEntry> OpticsOrdering(const Relation& relation,
                                        const DistanceEvaluator& evaluator,
                                        const OpticsParams& params);

/// Extracts a flat DBSCAN-equivalent clustering from an OPTICS ordering at
/// threshold `epsilon` <= params.max_epsilon: consecutive ordering entries
/// with reachability <= epsilon share a cluster; entries above it either
/// start a new cluster (if core at `epsilon`) or become noise.
Labels ExtractDbscanClustering(const std::vector<OpticsEntry>& ordering,
                               double epsilon, std::size_t n);

/// Convenience: ordering + extraction in one call.
Labels Optics(const Relation& relation, const DistanceEvaluator& evaluator,
              const OpticsParams& params, double extraction_epsilon);

}  // namespace disc

#endif  // DISC_CLUSTERING_OPTICS_H_
