#ifndef DISC_CLUSTERING_DBSCAN_H_
#define DISC_CLUSTERING_DBSCAN_H_

#include <cstddef>

#include "clustering/labels.h"
#include "common/relation.h"
#include "distance/evaluator.h"

namespace disc {

/// DBSCAN parameters: a point is a core point when it has at least
/// `min_pts` neighbors within `epsilon` (itself included, as in the
/// original Ester et al. formulation).
struct DbscanParams {
  double epsilon = 1.0;
  std::size_t min_pts = 4;
};

/// Density-based clustering (Ester et al., KDD'96). Core points expand
/// clusters through density-reachability; border points join the first core
/// point that reaches them; everything else is labeled kNoise.
///
/// Works on any schema supported by the evaluator (strings included).
Labels Dbscan(const Relation& relation, const DistanceEvaluator& evaluator,
              const DbscanParams& params);

}  // namespace disc

#endif  // DISC_CLUSTERING_DBSCAN_H_
