#ifndef DISC_CLUSTERING_KMEANS_MM_H_
#define DISC_CLUSTERING_KMEANS_MM_H_

#include <cstddef>
#include <cstdint>

#include "clustering/kmeans.h"
#include "clustering/labels.h"
#include "common/relation.h"

namespace disc {

/// K-Means-- parameters (Chawla & Gionis, SDM'13): cluster into k groups
/// while simultaneously excluding the l points farthest from their nearest
/// centers as outliers in every iteration.
struct KMeansMMParams {
  std::size_t k = 2;
  std::size_t l = 0;  ///< number of outliers to exclude
  std::size_t max_iterations = 100;
  std::uint64_t seed = 42;
};

/// K-Means--: "a unified approach to clustering and outlier detection".
/// Outlier points are labeled kNoise in the result.
KMeansResult KMeansMM(const Relation& relation, const KMeansMMParams& params);

}  // namespace disc

#endif  // DISC_CLUSTERING_KMEANS_MM_H_
