// Quickstart: detect outliers under distance constraints, save them with
// DISC, and watch DBSCAN clustering accuracy improve.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "clustering/dbscan.h"
#include "core/outlier_saving.h"
#include "data/generators.h"
#include "data/error_injection.h"
#include "eval/clustering_metrics.h"

int main() {
  using namespace disc;

  // 1. Make a dataset: two Gaussian clusters, 2 attributes.
  std::vector<ClusterSpec> clusters;
  clusters.push_back({{0.0, 0.0}, 0.6, 120});
  clusters.push_back({{10.0, 0.0}, 0.6, 120});
  LabeledRelation truth = GenerateGaussianMixture(clusters, /*seed=*/1);

  // 2. Corrupt it: 5% of tuples get an error on one attribute — the
  //    "width recorded in inch instead of cm" story of the paper's intro.
  ErrorInjectionSpec errors;
  errors.tuple_rate = 0.05;
  errors.min_attributes = 1;
  errors.max_attributes = 1;
  errors.magnitude = 10.0;
  InjectionResult injected = InjectNumericErrors(truth.data, errors);
  std::printf("dataset: %zu tuples, %zu with injected errors\n",
              injected.dirty.size(), injected.dirty_rows.size());

  // 3. Cluster the dirty data directly: errors distort the result.
  DistanceEvaluator evaluator(injected.dirty.schema());
  DistanceConstraint constraint{1.5, 5};
  Labels raw_labels =
      Dbscan(injected.dirty, evaluator, {constraint.epsilon, constraint.eta});
  PairCountingScores raw = PairCounting(raw_labels, truth.labels);
  std::printf("DBSCAN on raw dirty data : F1 = %.4f (%zu clusters, %zu noise)\n",
              raw.f1, NumClusters(raw_labels), NumNoise(raw_labels));

  // 4. Save the outliers: minimally adjust their values so they regain
  //    enough ε-neighbors (Algorithm 1 of the paper).
  OutlierSavingOptions options;
  options.constraint = constraint;
  SavedDataset saved = SaveOutliers(injected.dirty, evaluator, options);
  std::printf("outlier saving           : %zu flagged, %zu saved, "
              "mean cost %.3f, mean #attrs adjusted %.2f\n",
              saved.outlier_rows.size(),
              saved.CountDisposition(OutlierDisposition::kSaved),
              saved.MeanAdjustmentCost(), saved.MeanAdjustedAttributes());

  // 5. Cluster again on the repaired data.
  Labels disc_labels =
      Dbscan(saved.repaired, evaluator, {constraint.epsilon, constraint.eta});
  PairCountingScores disc = PairCounting(disc_labels, truth.labels);
  std::printf("DBSCAN after DISC saving : F1 = %.4f (%zu clusters, %zu noise)\n",
              disc.f1, NumClusters(disc_labels), NumNoise(disc_labels));

  std::printf("improvement              : %+.4f F1\n", disc.f1 - raw.f1);
  return 0;
}
