// Record matching over string data: the paper's Restaurant / zip-code
// story (§1.1, Figure 8).
//
// Typos like RH10-OAG (letter O instead of digit 0) make records outlying
// under edit-distance constraints and break rule-based duplicate matching.
// Saving those outliers restores the matches.

#include <cstdio>

#include "core/outlier_saving.h"
#include "data/datasets.h"
#include "matching/record_matching.h"

int main() {
  using namespace disc;

  PaperDataset ds = MakePaperDataset("restaurant", /*seed=*/42);
  DistanceEvaluator evaluator(ds.dirty.schema());
  std::printf("restaurant: %zu records over %zu attributes, "
              "%zu records with typos, constraint (eps=%.2f, eta=%zu)\n",
              ds.dirty.size(), ds.dirty.arity(), ds.dirty_rows.size(),
              ds.suggested.epsilon, ds.suggested.eta);

  std::vector<MatchPair> truth_pairs = PairsFromEntityIds(ds.labels);
  std::printf("ground truth duplicate pairs: %zu\n", truth_pairs.size());

  MatchingScores clean = ScoreMatching(MatchRecords(ds.clean), truth_pairs);
  MatchingScores dirty = ScoreMatching(MatchRecords(ds.dirty), truth_pairs);
  std::printf("matching on clean data : F1 = %.4f\n", clean.f1);
  std::printf("matching on dirty data : F1 = %.4f\n", dirty.f1);

  // Save the typo-ridden outliers under edit-distance constraints. κ = 2
  // protects the singleton records: they are outlying on *every* attribute
  // (no duplicate anywhere), so no ≤2-attribute repair exists and they are
  // correctly left unchanged, while the typo'd duplicates are repaired.
  OutlierSavingOptions options;
  options.constraint = ds.suggested;
  options.save.kappa = 2;
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);
  std::printf("outlier saving         : %zu flagged, %zu saved, "
              "%zu left unchanged\n",
              saved.outlier_rows.size(),
              saved.CountDisposition(OutlierDisposition::kSaved),
              saved.CountDisposition(OutlierDisposition::kInfeasible));

  // Show a concrete zip-code-style repair.
  int shown = 0;
  for (const OutlierRecord& rec : saved.records) {
    if (rec.disposition != OutlierDisposition::kSaved || shown >= 3) continue;
    for (std::size_t a : rec.adjusted_attributes.ToIndices()) {
      std::printf("  row %zu %s: \"%s\" -> \"%s\"\n", rec.row,
                  ds.dirty.schema().name(a).c_str(),
                  ds.dirty[rec.row][a].str().c_str(),
                  rec.adjusted[a].str().c_str());
    }
    ++shown;
  }

  MatchingScores repaired =
      ScoreMatching(MatchRecords(saved.repaired), truth_pairs);
  std::printf("matching after saving  : F1 = %.4f (%+.4f vs dirty)\n",
              repaired.f1, repaired.f1 - dirty.f1);
  return 0;
}
