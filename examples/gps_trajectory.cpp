// GPS trajectory repair: the running example of the paper's Figure 2.
//
// A trajectory of (Time, Longitude, Latitude) readings contains dirty
// outliers — a longitude spike (t13-style) and a wrong timestamp
// (t24-style) — plus natural outliers from another trajectory. DISC adjusts
// only the broken attribute of each dirty outlier and leaves the natural
// outliers unchanged, so the trajectory is no longer split into spurious
// segments.

#include <cstdio>

#include "clustering/dbscan.h"
#include "core/outlier_saving.h"
#include "data/datasets.h"
#include "eval/clustering_metrics.h"

int main() {
  using namespace disc;

  PaperDataset ds = MakePaperDataset("gps", /*seed=*/42, /*scale=*/0.1);
  DistanceEvaluator evaluator(ds.dirty.schema());
  std::printf("GPS trajectory: %zu points, %zu dirty outliers, "
              "%zu natural outliers, constraint (eps=%.2f, eta=%zu)\n",
              ds.dirty.size(), ds.dirty_rows.size(),
              ds.natural_outlier_rows.size(), ds.suggested.epsilon,
              ds.suggested.eta);

  // Segment (cluster) the raw trajectory.
  Labels raw = Dbscan(ds.dirty, evaluator,
                      {ds.suggested.epsilon, ds.suggested.eta});
  std::printf("raw      : %zu segments, %zu noise, F1 = %.4f\n",
              NumClusters(raw), NumNoise(raw),
              PairCounting(raw, ds.labels).f1);

  // Save outliers with a natural-outlier guard: only 1-2 attribute repairs
  // are trusted (errors hit one sensor at a time); the rest are flagged.
  OutlierSavingOptions options;
  options.constraint = ds.suggested;
  options.natural_attribute_threshold = 2;
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);

  std::printf("saving   : %zu flagged, %zu saved, %zu left as natural, "
              "%zu infeasible\n",
              saved.outlier_rows.size(),
              saved.CountDisposition(OutlierDisposition::kSaved),
              saved.CountDisposition(OutlierDisposition::kNaturalOutlier),
              saved.CountDisposition(OutlierDisposition::kInfeasible));

  // Show a few concrete repairs, Figure-2 style.
  int shown = 0;
  for (const OutlierRecord& rec : saved.records) {
    if (rec.disposition != OutlierDisposition::kSaved || shown >= 3) continue;
    const Tuple& before = ds.dirty[rec.row];
    const Tuple& after = rec.adjusted;
    std::printf("  t%zu: (%.0f, %.1f, %.1f) -> (%.0f, %.1f, %.1f)  "
                "cost %.3f, %zu attribute(s)\n",
                rec.row, before[0].num(), before[1].num(), before[2].num(),
                after[0].num(), after[1].num(), after[2].num(), rec.cost,
                rec.adjusted_attributes.size());
    ++shown;
  }

  Labels repaired = Dbscan(saved.repaired, evaluator,
                           {ds.suggested.epsilon, ds.suggested.eta});
  std::printf("repaired : %zu segments, %zu noise, F1 = %.4f\n",
              NumClusters(repaired), NumNoise(repaired),
              PairCounting(repaired, ds.labels).f1);
  return 0;
}
