// disc_cli — run DISC outlier saving end-to-end on a CSV file.
//
// Usage:
//   disc_cli <input.csv> <output.csv> [--epsilon E] [--eta N]
//            [--kappa K] [--threads T] [--normalize] [--exact]
//            [--deadline-ms D] [--per-outlier-deadline-ms D]
//            [--metrics-json PATH] [--trace PATH] [--explain[=PATH]]
//            [--journal PATH] [--resume] [--retries N]
//            [--fault-spec SPEC] [--fault-seed N]
//            [--strict-csv] [--max-input-bytes N]
//            [--serve[=PORT]] [--log-level LEVEL] [--quiet]
//   disc_cli --serve-idle[=PORT] [--log-level LEVEL] [--quiet]
//
// Without --epsilon/--eta the constraint is fitted automatically with the
// Poisson rule of §2.1.2 (p(N(ε) >= η) >= 0.99). --normalize min-max scales
// numeric attributes before saving and maps the repairs back to original
// units. --threads T saves outliers on T worker threads (0 = one per
// hardware thread; results are bit-identical for any T).
// --deadline-ms bounds the whole pipeline's wall clock: searches that run
// out of time return their best feasible incumbent and the run reports how
// many outliers degraded (anytime saving — see DESIGN.md).
// --per-outlier-deadline-ms additionally caps each individual search.
// --metrics-json PATH attaches a MetricsRegistry to the run and writes its
// JSON snapshot to PATH on exit (see DESIGN.md §8 for the metric names).
// --trace PATH streams the hierarchical span trees of the run to PATH as
// JSONL: per outlier a "save_outlier" root, its per-attempt "search" span,
// the per-phase children (index_query/bounds_scan/dcache_fill/verdict) and
// the pool-chunk spans of nested scans, all linked by
// trace_id/span_id/parent_id (analyze with scripts/analyze_trace.py).
// --explain[=PATH] streams per-search decision provenance to PATH (or
// stdout when PATH is omitted) as JSONL, one object per saved outlier:
// every node the branch-and-bound search visited with the action taken
// (expand / prune_lb / prune_budget / infeasible / incumbent_update /
// memo_hit / revert_refine), its Prop-3/Prop-5 bounds, and a derived
// summary with prune breakdown, incumbent timeline and bound-tightness
// ratios (schemas/explain.schema.json; analyze with
// scripts/analyze_explain.py). Capture is bit-identical for any --threads.
//
// Crash safety & chaos testing (DESIGN.md §11):
// --journal PATH appends every definitively finished outlier to a JSONL
// save journal; --resume restores journaled verdicts from a previous
// interrupted run of the same batch (the merged output is bit-identical
// to an uninterrupted run). --retries N re-runs transiently failed
// searches up to N attempts with exponential backoff.
// --fault-spec SPEC arms the deterministic fault injector (grammar in
// common/fault.h, e.g. "search.node:cancel:nth=100"); --fault-seed N
// seeds its probability triggers. Injected kCancel faults cancel the
// batch cooperatively, like Ctrl-C.
// --strict-csv rejects mixed numeric/non-numeric CSV columns instead of
// demoting them to strings; --max-input-bytes N caps the input file size.
//
// Live observability plane (DESIGN.md §8):
// --serve[=PORT] starts the embedded HTTP server on 127.0.0.1 (PORT omitted
// or 0 = ephemeral, printed at startup) before the pipeline runs, serving
// /metrics, /metrics.json, /tracez, /profilez, /explainz, /healthz and
// /statusz concurrently with the save (serve mode also attaches the trace
// recorder, the wall-phase profiler and the explain recorder). The process
// then keeps serving until
// SIGINT/SIGTERM; the signal
// cancels any in-flight batch cooperatively, stops the server, and flushes
// metrics/trace outputs before exiting 0. --serve-idle[=PORT] serves
// without requiring a pipeline (input/output become optional).
// --log-level LEVEL (debug|info|warn|error) filters the structured JSON
// logs; --quiet silences them on stderr (they still feed the in-memory
// ring exposed at /statusz?logs=N).
// Prints a per-outlier report and writes the repaired relation.

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/cancellation.h"
#include "common/csv.h"
#include "common/fault.h"
#include "common/log.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "constraints/parameter_selection.h"
#include "core/outlier_saving.h"
#include "distance/normalization.h"
#include "obs/endpoints.h"
#include "obs/explain.h"
#include "obs/http_server.h"
#include "obs/progress.h"

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.csv> <output.csv> [--epsilon E] [--eta N]\n"
               "          [--kappa K] [--threads T] [--normalize] [--exact]\n"
               "          [--deadline-ms D] [--per-outlier-deadline-ms D]\n"
               "          [--metrics-json PATH] [--trace PATH]\n"
               "          [--explain[=PATH]]\n"
               "          [--journal PATH] [--resume] [--retries N]\n"
               "          [--fault-spec SPEC] [--fault-seed N]\n"
               "          [--strict-csv] [--max-input-bytes N]\n"
               "          [--serve[=PORT]] [--log-level LEVEL] [--quiet]\n"
               "       %s --serve-idle[=PORT] [--log-level LEVEL] [--quiet]\n",
               argv0, argv0);
}

/// Writes `text` to `path` ("-" or empty = stdout). Returns false on error.
bool WriteTextTo(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0 && written == text.size();
  return ok;
}

// Signal → shutdown hand-off. The handler does only async-signal-safe work:
// two lock-free atomic stores. g_cancel is set (and never changed again)
// before the handlers are installed, so the handler can't observe a
// half-built source; RequestCancel() is a single release store on the
// shared flag.
std::atomic<bool> g_shutdown{false};
disc::CancellationSource* g_cancel = nullptr;

void HandleShutdownSignal(int /*signum*/) {
  g_shutdown.store(true, std::memory_order_release);
  if (g_cancel != nullptr) g_cancel->RequestCancel();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disc;

  double epsilon = 0;
  std::size_t eta = 0;
  std::size_t kappa = 0;
  std::size_t threads = 1;
  bool normalize = false;
  bool use_exact = false;
  long long deadline_ms = 0;
  long long per_outlier_deadline_ms = 0;
  std::string metrics_json_path;
  std::string trace_path;
  bool explain_requested = false;
  std::string explain_path;
  std::string journal_path;
  bool resume = false;
  std::size_t retries = 0;
  std::string fault_spec;
  long long fault_seed = 0;
  bool strict_csv = false;
  long long max_input_bytes = 0;
  bool metrics_requested = false;
  bool serve = false;
  bool serve_idle = false;
  int serve_port = 0;
  std::string log_level_name;
  std::vector<std::string> positional;
  // Accepts both `--flag PATH` and `--flag=PATH`.
  auto path_flag = [&](int* i, const char* flag, std::string* out) {
    const std::size_t flag_len = std::strlen(flag);
    if (std::strcmp(argv[*i], flag) == 0 && *i + 1 < argc) {
      *out = argv[++*i];
      return true;
    }
    if (std::strncmp(argv[*i], flag, flag_len) == 0 &&
        argv[*i][flag_len] == '=') {
      *out = argv[*i] + flag_len + 1;
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    if (path_flag(&i, "--metrics-json", &metrics_json_path)) {
      metrics_requested = true;
    } else if (path_flag(&i, "--trace", &trace_path)) {
    } else if (std::strcmp(argv[i], "--explain") == 0) {
      explain_requested = true;
    } else if (std::strncmp(argv[i], "--explain=", 10) == 0) {
      explain_requested = true;
      explain_path = argv[i] + 10;
    } else if (path_flag(&i, "--journal", &journal_path)) {
    } else if (path_flag(&i, "--fault-spec", &fault_spec)) {
    } else if (std::strcmp(argv[i], "--resume") == 0) {
      resume = true;
    } else if (std::strcmp(argv[i], "--retries") == 0 && i + 1 < argc) {
      retries = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--fault-seed") == 0 && i + 1 < argc) {
      fault_seed = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--strict-csv") == 0) {
      strict_csv = true;
    } else if (std::strcmp(argv[i], "--max-input-bytes") == 0 &&
               i + 1 < argc) {
      max_input_bytes = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--epsilon") == 0 && i + 1 < argc) {
      epsilon = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--eta") == 0 && i + 1 < argc) {
      eta = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--kappa") == 0 && i + 1 < argc) {
      kappa = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--per-outlier-deadline-ms") == 0 &&
               i + 1 < argc) {
      per_outlier_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--normalize") == 0) {
      normalize = true;
    } else if (std::strcmp(argv[i], "--exact") == 0) {
      use_exact = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0) {
      SetLogToStderr(false);
    } else if (std::strcmp(argv[i], "--serve") == 0) {
      serve = true;
    } else if (std::strncmp(argv[i], "--serve=", 8) == 0) {
      serve = true;
      serve_port = std::atoi(argv[i] + 8);
    } else if (std::strcmp(argv[i], "--serve-idle") == 0) {
      serve = true;
      serve_idle = true;
    } else if (std::strncmp(argv[i], "--serve-idle=", 13) == 0) {
      serve = true;
      serve_idle = true;
      serve_port = std::atoi(argv[i] + 13);
    } else if (std::strcmp(argv[i], "--log-level") == 0 && i + 1 < argc) {
      log_level_name = argv[++i];
    } else if (std::strncmp(argv[i], "--log-level=", 12) == 0) {
      log_level_name = argv[i] + 12;
    } else if (argv[i][0] == '-' && argv[i][1] != '\0') {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage(argv[0]);
      return 2;
    } else {
      positional.push_back(argv[i]);
    }
  }
  if (!log_level_name.empty()) {
    LogLevel level;
    if (!ParseLogLevel(log_level_name, &level)) {
      std::fprintf(stderr,
                   "invalid --log-level: %s (want debug|info|warn|error)\n",
                   log_level_name.c_str());
      return 2;
    }
    SetMinLogLevel(level);
  }
  if (serve_port < 0 || serve_port > 65535) {
    std::fprintf(stderr, "invalid --serve port: %d\n", serve_port);
    return 2;
  }
  const bool run_pipeline = positional.size() == 2;
  if (!run_pipeline && !(serve_idle && positional.empty())) {
    PrintUsage(argv[0]);
    return 2;
  }

  // Fault injection (DESIGN.md §11): configure-then-attach. Armed before
  // the observability plane and the pipeline so every fault site in the
  // process resolves against it. Injected kCancel faults mirror into the
  // batch cancellation source, so they cancel the run exactly like Ctrl-C.
  CancellationSource cancel;
  std::unique_ptr<FaultInjector> fault_injector;
  if (!fault_spec.empty()) {
    fault_injector =
        std::make_unique<FaultInjector>(static_cast<std::uint64_t>(fault_seed));
    Status armed = fault_injector->AddFromString(fault_spec);
    if (!armed.ok()) {
      std::fprintf(stderr, "invalid --fault-spec: %s\n",
                   armed.ToString().c_str());
      return 2;
    }
    fault_injector->MirrorCancelTo(cancel);
    AttachGlobalFaultInjector(fault_injector.get());
    std::printf("fault injection armed: %s (seed %lld)\n", fault_spec.c_str(),
                fault_seed);
  }

  // Observability plane (DESIGN.md §8). The registries attach globally
  // *before* the pipeline so the neighbor indexes built inside SaveOutliers
  // resolve their raw-traffic counters and SaveAll registers its progress
  // tracker; per-search stats flush into the metrics registry once per
  // batch either way. The server starts before the pipeline so scrapes
  // observe the run live.
  std::unique_ptr<MetricsRegistry> metrics;
  if (metrics_requested || serve) {
    metrics = std::make_unique<MetricsRegistry>();
    AttachGlobalMetrics(metrics.get());
  }
  std::unique_ptr<ProgressRegistry> progress;
  std::unique_ptr<TraceRecorder> recorder;
  std::unique_ptr<WallPhaseProfiler> profiler;
  std::unique_ptr<ExplainRecorder> explain_recorder;
  std::unique_ptr<HttpServer> server;
  if (serve) {
    progress = std::make_unique<ProgressRegistry>();
    AttachGlobalProgress(progress.get());
    // /tracez and /profilez backends: the recorder keeps a ring of recent
    // search spans plus the in-flight ones, the profiler accumulates the
    // wall-phase totals. Attached before the pipeline so every search of
    // the run is covered.
    recorder = std::make_unique<TraceRecorder>();
    AttachGlobalTraceRecorder(recorder.get());
    profiler = std::make_unique<WallPhaseProfiler>();
    AttachGlobalWallProfiler(profiler.get());
    // /explainz backend: per-search decision summaries (recent + slowest).
    explain_recorder = std::make_unique<ExplainRecorder>();
    AttachGlobalExplainRecorder(explain_recorder.get());
    HttpServer::Options server_options;
    server_options.port = static_cast<std::uint16_t>(serve_port);
    server = std::make_unique<HttpServer>(server_options);
    RegisterObsEndpoints(server.get());
    Status started = server->Start();
    if (!started.ok()) {
      std::fprintf(stderr, "error starting observability server: %s\n",
                   started.ToString().c_str());
      return 1;
    }
    std::printf("serving /metrics /metrics.json /tracez /profilez /explainz "
                "/healthz /statusz on http://127.0.0.1:%u\n",
                static_cast<unsigned>(server->port()));
    std::fflush(stdout);
    // Install the graceful-shutdown path only in serve mode: without the
    // server a Ctrl-C should keep its default kill-the-process meaning.
    g_cancel = &cancel;
    std::signal(SIGINT, HandleShutdownSignal);
    std::signal(SIGTERM, HandleShutdownSignal);
  }

  std::unique_ptr<JsonlTraceSink> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<JsonlTraceSink>(trace_path);
  }
  std::unique_ptr<ExplainJsonlSink> explain_sink;
  if (explain_requested) {
    explain_sink = std::make_unique<ExplainJsonlSink>(explain_path);
  }

  int exit_code = 0;
  if (run_pipeline) {
    const std::string& input_path = positional[0];
    const std::string& output_path = positional[1];

    CsvOptions csv_options;
    csv_options.strict_numeric = strict_csv;
    if (max_input_bytes > 0) {
      csv_options.max_bytes = static_cast<std::size_t>(max_input_bytes);
    }
    Result<Relation> loaded = ReadCsv(input_path, csv_options);
    if (!loaded.ok()) {
      std::fprintf(stderr, "error reading %s: %s\n", input_path.c_str(),
                   loaded.status().ToString().c_str());
      return 1;
    }
    Relation raw = std::move(loaded).value();
    if (raw.size() == 0) {
      std::fprintf(stderr, "error: %s has a header but no data rows\n",
                   input_path.c_str());
      return 1;
    }
    std::printf("loaded %zu tuples x %zu attributes from %s\n", raw.size(),
                raw.arity(), input_path.c_str());

    Normalizer normalizer = Normalizer::Fit(raw);
    Relation working = normalize ? normalizer.Apply(raw) : raw;
    DistanceEvaluator evaluator(working.schema());

    DistanceConstraint constraint{epsilon, eta};
    if (epsilon <= 0 || eta == 0) {
      ParameterSelection sel = SelectParametersPoisson(working, evaluator);
      if (epsilon <= 0) constraint.epsilon = sel.constraint.epsilon;
      if (eta == 0) constraint.eta = sel.constraint.eta;
      std::printf(
          "fitted constraint via Poisson rule: eps=%.4f eta=%zu "
          "(lambda=%.2f, confidence=%.3f)\n",
          constraint.epsilon, constraint.eta, sel.lambda_epsilon,
          sel.confidence);
    } else {
      std::printf("using constraint: eps=%.4f eta=%zu\n", constraint.epsilon,
                  constraint.eta);
    }

    OutlierSavingOptions options;
    options.constraint = constraint;
    options.save.kappa = kappa;
    options.use_exact = use_exact;
    options.exact_max_candidates = 200000;
    options.num_threads = threads;
    options.batch_deadline_ms = deadline_ms;
    options.per_outlier_deadline_ms = per_outlier_deadline_ms;
    options.cancellation = cancel.token();
    options.metrics = metrics.get();
    options.trace = trace.get();
    options.explain = explain_sink.get();
    options.journal_path = journal_path;
    options.resume_from_journal = resume;
    if (retries > 0) options.retry.max_attempts = retries + 1;

    SavedDataset saved = SaveOutliers(working, evaluator, options);
    if (!saved.status.ok()) {
      std::fprintf(stderr, "error saving outliers: %s\n",
                   saved.status.ToString().c_str());
      return 1;
    }

    std::printf("outliers: %zu flagged / %zu tuples; %zu saved, %zu natural, "
                "%zu infeasible; mean cost %.4f, mean #attrs %.2f\n",
                saved.outlier_rows.size(), working.size(),
                saved.CountDisposition(OutlierDisposition::kSaved),
                saved.CountDisposition(OutlierDisposition::kNaturalOutlier),
                saved.CountDisposition(OutlierDisposition::kInfeasible),
                saved.MeanAdjustmentCost(), saved.MeanAdjustedAttributes());

    // Degradation summary: which searches were truncated and why. Every
    // applied adjustment is fully feasible regardless — a truncated search
    // just may have settled for a costlier repair (anytime contract).
    if (saved.degraded()) {
      std::printf(
          "degraded: %s\n  completed %zu, deadline %zu, cancelled %zu, "
          "visit-budget %zu, query-budget %zu, faulted %zu, infeasible %zu\n",
          saved.DegradationStatus().ToString().c_str(),
          saved.CountTermination(SaveTermination::kCompleted),
          saved.CountTermination(SaveTermination::kDeadline),
          saved.CountTermination(SaveTermination::kCancelled),
          saved.CountTermination(SaveTermination::kVisitBudget),
          saved.CountTermination(SaveTermination::kQueryBudget),
          saved.CountTermination(SaveTermination::kFault),
          saved.CountTermination(SaveTermination::kInfeasible));
    } else if (deadline_ms > 0 || per_outlier_deadline_ms > 0) {
      std::printf("no degradation: all %zu searches finished in budget\n",
                  saved.records.size());
    }

    Relation repaired =
        normalize ? normalizer.Invert(saved.repaired) : saved.repaired;

    // Per-outlier report (first 20 rows).
    int shown = 0;
    for (const OutlierRecord& rec : saved.records) {
      if (rec.disposition != OutlierDisposition::kSaved || shown >= 20)
        continue;
      std::printf("  row %zu:", rec.row);
      for (std::size_t a : rec.adjusted_attributes.ToIndices()) {
        std::printf(" %s %s->%s", raw.schema().name(a).c_str(),
                    raw[rec.row][a].ToString().c_str(),
                    repaired[rec.row][a].ToString().c_str());
      }
      std::printf("  (cost %.4f)\n", rec.cost);
      ++shown;
    }

    Status write_status = WriteCsv(repaired, output_path);
    if (!write_status.ok()) {
      std::fprintf(stderr, "error writing %s: %s\n", output_path.c_str(),
                   write_status.ToString().c_str());
      return 1;
    }
    std::printf("wrote repaired relation to %s\n", output_path.c_str());
  }

  if (serve) {
    // Keep serving until SIGINT/SIGTERM: a scraper should be able to read
    // the final state of a finished run, and --serve-idle exists purely to
    // expose the plane. The shutdown ordering below mirrors
    // HttpServer::Stop's contract: stop accepting scrapes first, then
    // detach the global registries (record sites become no-ops), then
    // flush the durable outputs.
    std::printf(run_pipeline
                    ? "pipeline done; serving until SIGINT/SIGTERM\n"
                    : "idle; serving until SIGINT/SIGTERM\n");
    std::fflush(stdout);
    while (!g_shutdown.load(std::memory_order_acquire)) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    std::printf("shutdown signal received; stopping server\n");
    server->Stop();
    // Detach order mirrors attach: the server no longer answers, so the
    // live hooks can go first; record sites degrade to no-ops instantly.
    AttachGlobalTraceRecorder(nullptr);
    AttachGlobalWallProfiler(nullptr);
    AttachGlobalExplainRecorder(nullptr);
    AttachGlobalProgress(nullptr);
  }

  if (metrics != nullptr) {
    AttachGlobalMetrics(nullptr);
    if (metrics_requested) {
      if (WriteTextTo(metrics_json_path, metrics->ToJson())) {
        if (metrics_json_path != "-" && !metrics_json_path.empty()) {
          std::printf("wrote metrics snapshot to %s\n",
                      metrics_json_path.c_str());
        }
      } else {
        std::fprintf(stderr, "error writing metrics to %s\n",
                     metrics_json_path.c_str());
        exit_code = 1;
      }
    }
  }
  if (fault_injector != nullptr) {
    AttachGlobalFaultInjector(nullptr);
    std::printf("fault injection: %llu fires (%s)\n",
                static_cast<unsigned long long>(fault_injector->total_fires()),
                fault_injector->cancel_fired() ? "cancel fired"
                                               : "no cancel fired");
  }
  if (trace != nullptr) {
    Status trace_status = trace->Close();
    if (trace_status.ok()) {
      std::printf("wrote trace to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error writing trace to %s: %s\n",
                   trace_path.c_str(), trace_status.ToString().c_str());
      exit_code = 1;
    }
  }
  if (explain_sink != nullptr) {
    Status explain_status = explain_sink->Close();
    if (!explain_status.ok()) {
      std::fprintf(stderr, "error writing explain log: %s\n",
                   explain_status.ToString().c_str());
      exit_code = 1;
    } else if (!explain_path.empty() && explain_path != "-") {
      std::printf("wrote explain log to %s\n", explain_path.c_str());
    }
  }
  return exit_code;
}
