// disc_cli — run DISC outlier saving end-to-end on a CSV file.
//
// Usage:
//   disc_cli <input.csv> <output.csv> [--epsilon E] [--eta N]
//            [--kappa K] [--threads T] [--normalize] [--exact]
//            [--deadline-ms D] [--per-outlier-deadline-ms D]
//            [--metrics-json PATH] [--trace PATH]
//
// Without --epsilon/--eta the constraint is fitted automatically with the
// Poisson rule of §2.1.2 (p(N(ε) >= η) >= 0.99). --normalize min-max scales
// numeric attributes before saving and maps the repairs back to original
// units. --threads T saves outliers on T worker threads (0 = one per
// hardware thread; results are bit-identical for any T).
// --deadline-ms bounds the whole pipeline's wall clock: searches that run
// out of time return their best feasible incumbent and the run reports how
// many outliers degraded (anytime saving — see DESIGN.md).
// --per-outlier-deadline-ms additionally caps each individual search.
// --metrics-json PATH attaches a MetricsRegistry to the run and writes its
// JSON snapshot to PATH on exit (see DESIGN.md §8 for the metric names).
// --trace PATH streams one JSONL span per outlier search (plus the split
// phase) to PATH, each span carrying the full SearchStats.
// Prints a per-outlier report and writes the repaired relation.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "common/csv.h"
#include "common/metrics.h"
#include "common/trace.h"
#include "constraints/parameter_selection.h"
#include "core/outlier_saving.h"
#include "distance/normalization.h"

namespace {

void PrintUsage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s <input.csv> <output.csv> [--epsilon E] [--eta N]\n"
               "          [--kappa K] [--threads T] [--normalize] [--exact]\n"
               "          [--deadline-ms D] [--per-outlier-deadline-ms D]\n"
               "          [--metrics-json PATH] [--trace PATH]\n",
               argv0);
}

/// Writes `text` to `path` ("-" or empty = stdout). Returns false on error.
bool WriteTextTo(const std::string& path, const std::string& text) {
  if (path.empty() || path == "-") {
    std::fwrite(text.data(), 1, text.size(), stdout);
    return true;
  }
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(text.data(), 1, text.size(), f);
  const bool ok = std::fclose(f) == 0 && written == text.size();
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace disc;

  if (argc < 3) {
    PrintUsage(argv[0]);
    return 2;
  }
  std::string input_path = argv[1];
  std::string output_path = argv[2];

  double epsilon = 0;
  std::size_t eta = 0;
  std::size_t kappa = 0;
  std::size_t threads = 1;
  bool normalize = false;
  bool use_exact = false;
  long long deadline_ms = 0;
  long long per_outlier_deadline_ms = 0;
  std::string metrics_json_path;
  std::string trace_path;
  bool metrics_requested = false;
  // Accepts both `--flag PATH` and `--flag=PATH`.
  auto path_flag = [&](int* i, const char* flag, std::string* out) {
    const std::size_t flag_len = std::strlen(flag);
    if (std::strcmp(argv[*i], flag) == 0 && *i + 1 < argc) {
      *out = argv[++*i];
      return true;
    }
    if (std::strncmp(argv[*i], flag, flag_len) == 0 &&
        argv[*i][flag_len] == '=') {
      *out = argv[*i] + flag_len + 1;
      return true;
    }
    return false;
  };
  for (int i = 3; i < argc; ++i) {
    if (path_flag(&i, "--metrics-json", &metrics_json_path)) {
      metrics_requested = true;
    } else if (path_flag(&i, "--trace", &trace_path)) {
    } else if (std::strcmp(argv[i], "--epsilon") == 0 && i + 1 < argc) {
      epsilon = std::atof(argv[++i]);
    } else if (std::strcmp(argv[i], "--eta") == 0 && i + 1 < argc) {
      eta = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--kappa") == 0 && i + 1 < argc) {
      kappa = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = static_cast<std::size_t>(std::atoi(argv[++i]));
    } else if (std::strcmp(argv[i], "--deadline-ms") == 0 && i + 1 < argc) {
      deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--per-outlier-deadline-ms") == 0 &&
               i + 1 < argc) {
      per_outlier_deadline_ms = std::atoll(argv[++i]);
    } else if (std::strcmp(argv[i], "--normalize") == 0) {
      normalize = true;
    } else if (std::strcmp(argv[i], "--exact") == 0) {
      use_exact = true;
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", argv[i]);
      PrintUsage(argv[0]);
      return 2;
    }
  }

  Result<Relation> loaded = ReadCsv(input_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error reading %s: %s\n", input_path.c_str(),
                 loaded.status().ToString().c_str());
    return 1;
  }
  Relation raw = std::move(loaded).value();
  std::printf("loaded %zu tuples x %zu attributes from %s\n", raw.size(),
              raw.arity(), input_path.c_str());

  Normalizer normalizer = Normalizer::Fit(raw);
  Relation working = normalize ? normalizer.Apply(raw) : raw;
  DistanceEvaluator evaluator(working.schema());

  DistanceConstraint constraint{epsilon, eta};
  if (epsilon <= 0 || eta == 0) {
    ParameterSelection sel = SelectParametersPoisson(working, evaluator);
    if (epsilon <= 0) constraint.epsilon = sel.constraint.epsilon;
    if (eta == 0) constraint.eta = sel.constraint.eta;
    std::printf(
        "fitted constraint via Poisson rule: eps=%.4f eta=%zu "
        "(lambda=%.2f, confidence=%.3f)\n",
        constraint.epsilon, constraint.eta, sel.lambda_epsilon,
        sel.confidence);
  } else {
    std::printf("using constraint: eps=%.4f eta=%zu\n", constraint.epsilon,
                constraint.eta);
  }

  OutlierSavingOptions options;
  options.constraint = constraint;
  options.save.kappa = kappa;
  options.use_exact = use_exact;
  options.exact_max_candidates = 200000;
  options.num_threads = threads;
  options.batch_deadline_ms = deadline_ms;
  options.per_outlier_deadline_ms = per_outlier_deadline_ms;

  // Observability (DESIGN.md §8): the registry attaches globally *before*
  // the pipeline so the neighbor indexes built inside SaveOutliers resolve
  // their raw-traffic counters; per-search stats flush into it once per
  // batch either way.
  std::unique_ptr<MetricsRegistry> metrics;
  if (metrics_requested) {
    metrics = std::make_unique<MetricsRegistry>();
    AttachGlobalMetrics(metrics.get());
    options.metrics = metrics.get();
  }
  std::unique_ptr<JsonlTraceSink> trace;
  if (!trace_path.empty()) {
    trace = std::make_unique<JsonlTraceSink>(trace_path);
    options.trace = trace.get();
  }

  SavedDataset saved = SaveOutliers(working, evaluator, options);
  if (!saved.status.ok()) {
    std::fprintf(stderr, "error saving outliers: %s\n",
                 saved.status.ToString().c_str());
    return 1;
  }

  std::printf("outliers: %zu flagged / %zu tuples; %zu saved, %zu natural, "
              "%zu infeasible; mean cost %.4f, mean #attrs %.2f\n",
              saved.outlier_rows.size(), working.size(),
              saved.CountDisposition(OutlierDisposition::kSaved),
              saved.CountDisposition(OutlierDisposition::kNaturalOutlier),
              saved.CountDisposition(OutlierDisposition::kInfeasible),
              saved.MeanAdjustmentCost(), saved.MeanAdjustedAttributes());

  // Degradation summary: which searches were truncated and why. Every
  // applied adjustment is fully feasible regardless — a truncated search
  // just may have settled for a costlier repair (anytime contract).
  if (saved.degraded()) {
    std::printf(
        "degraded: %s\n  completed %zu, deadline %zu, cancelled %zu, "
        "visit-budget %zu, query-budget %zu, infeasible %zu\n",
        saved.DegradationStatus().ToString().c_str(),
        saved.CountTermination(SaveTermination::kCompleted),
        saved.CountTermination(SaveTermination::kDeadline),
        saved.CountTermination(SaveTermination::kCancelled),
        saved.CountTermination(SaveTermination::kVisitBudget),
        saved.CountTermination(SaveTermination::kQueryBudget),
        saved.CountTermination(SaveTermination::kInfeasible));
  } else if (deadline_ms > 0 || per_outlier_deadline_ms > 0) {
    std::printf("no degradation: all %zu searches finished in budget\n",
                saved.records.size());
  }

  Relation repaired =
      normalize ? normalizer.Invert(saved.repaired) : saved.repaired;

  // Per-outlier report (first 20 rows).
  int shown = 0;
  for (const OutlierRecord& rec : saved.records) {
    if (rec.disposition != OutlierDisposition::kSaved || shown >= 20) continue;
    std::printf("  row %zu:", rec.row);
    for (std::size_t a : rec.adjusted_attributes.ToIndices()) {
      std::printf(" %s %s->%s", raw.schema().name(a).c_str(),
                  raw[rec.row][a].ToString().c_str(),
                  repaired[rec.row][a].ToString().c_str());
    }
    std::printf("  (cost %.4f)\n", rec.cost);
    ++shown;
  }

  Status write_status = WriteCsv(repaired, output_path);
  if (!write_status.ok()) {
    std::fprintf(stderr, "error writing %s: %s\n", output_path.c_str(),
                 write_status.ToString().c_str());
    return 1;
  }
  std::printf("wrote repaired relation to %s\n", output_path.c_str());

  int exit_code = 0;
  if (metrics != nullptr) {
    AttachGlobalMetrics(nullptr);
    if (WriteTextTo(metrics_json_path, metrics->ToJson())) {
      if (metrics_json_path != "-" && !metrics_json_path.empty()) {
        std::printf("wrote metrics snapshot to %s\n",
                    metrics_json_path.c_str());
      }
    } else {
      std::fprintf(stderr, "error writing metrics to %s\n",
                   metrics_json_path.c_str());
      exit_code = 1;
    }
  }
  if (trace != nullptr) {
    Status trace_status = trace->Close();
    if (trace_status.ok()) {
      std::printf("wrote trace to %s\n", trace_path.c_str());
    } else {
      std::fprintf(stderr, "error writing trace to %s: %s\n",
                   trace_path.c_str(), trace_status.ToString().c_str());
      exit_code = 1;
    }
  }
  return exit_code;
}
