// Sensor-array cleaning: the paper's wind-turbine motivation.
//
// A turbine packs many sensors (attributes); usually only one or two break
// at a time. This example builds a 16-sensor dataset, breaks 1-2 sensors on
// a few readings, and compares DISC's κ-restricted saving (trust repairs on
// at most κ attributes, O(m^{κ+1} n)) against the unrestricted search and
// against downstream classification quality.

#include <cstdio>

#include "core/outlier_saving.h"
#include "data/datasets.h"
#include "eval/set_metrics.h"
#include "ml/cross_validation.h"

int main() {
  using namespace disc;

  // Letter-shaped data: 16 attributes, 26 classes (scaled down).
  PaperDataset ds = MakePaperDataset("letter", /*seed=*/7, /*scale=*/0.04);
  DistanceEvaluator evaluator(ds.dirty.schema());
  std::printf("sensor array: %zu readings x %zu sensors, %zu dirty readings\n",
              ds.dirty.size(), ds.dirty.arity(), ds.dirty_rows.size());

  for (std::size_t kappa : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    OutlierSavingOptions options;
    options.constraint = ds.suggested;
    options.save.kappa = kappa;
    SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);

    // How well do the adjusted attributes match the truly broken sensors?
    double jaccard = 0;
    std::size_t measured = 0;
    for (const OutlierRecord& rec : saved.records) {
      AttributeSet truth;
      for (const CellError& e : ds.errors) {
        if (e.row == rec.row) truth.insert(e.attribute);
      }
      if (truth.empty() || rec.disposition != OutlierDisposition::kSaved) {
        continue;
      }
      jaccard += JaccardIndex(truth, rec.adjusted_attributes);
      ++measured;
    }
    std::printf("kappa=%zu : saved %3zu / %3zu, mean cost %.3f, "
                "attr-Jaccard %.3f\n",
                kappa, saved.CountDisposition(OutlierDisposition::kSaved),
                saved.outlier_rows.size(), saved.MeanAdjustmentCost(),
                measured ? jaccard / static_cast<double>(measured) : 0.0);
  }

  // Downstream: decision-tree classification before vs after saving.
  OutlierSavingOptions options;
  options.constraint = ds.suggested;
  options.save.kappa = 2;
  SavedDataset saved = SaveOutliers(ds.dirty, evaluator, options);

  std::vector<std::vector<double>> dirty_x;
  std::vector<std::vector<double>> saved_x;
  RelationToDataset(ds.dirty, ds.labels, &dirty_x);
  RelationToDataset(saved.repaired, ds.labels, &saved_x);
  ClassificationScores dirty_score = CrossValidateTree(dirty_x, ds.labels, 5);
  ClassificationScores saved_score = CrossValidateTree(saved_x, ds.labels, 5);
  std::printf("decision tree 5-fold F1 : raw %.4f -> saved %.4f\n",
              dirty_score.macro_f1, saved_score.macro_f1);
  return 0;
}
